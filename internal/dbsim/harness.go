package dbsim

import (
	"fmt"
	"time"

	"caasper/internal/billing"
	"caasper/internal/core"
	"caasper/internal/errs"
	"caasper/internal/faults"
	"caasper/internal/hooks"
	"caasper/internal/k8s"
	"caasper/internal/obs"
	"caasper/internal/recommend"
	"caasper/internal/workload"
)

// HarnessOptions configures an end-to-end live-system run: the cluster,
// the stateful set, the autoscaling loop cadence and the billing model.
type HarnessOptions struct {
	// RunHooks is the canonical spelling of the telemetry/fault knobs
	// shared with SimOptions and FleetOptions. The deprecated top-level
	// fields below shadow it for source compatibility; a set deprecated
	// field wins (see hooks.RunHooks.Merge).
	hooks.RunHooks
	// Cluster hosts the set; nil defaults to the paper's small cluster.
	Cluster *k8s.Cluster
	// Replicas is the stateful-set size (3 for Database A, 2 for
	// Database B in the paper).
	Replicas int
	// InitialCores is the starting whole-core limit.
	//
	// Deprecated: set Resources.Initial.CPUCores. A non-zero value here
	// wins, so seed callers behave identically.
	InitialCores int
	// MinCores / MaxCores are the scaler's safety bounds.
	//
	// Deprecated: set Resources.Min/Max.CPUCores. Non-zero values here
	// win, so seed callers behave identically.
	MinCores, MaxCores int
	// Resources is the canonical resource-vector spelling of the run's
	// bounds, shared with sim.Options and fleet.TenantSpec. The live
	// harness scales only the CPU entries today; Max.Replicas bounds
	// RunHorizontal's scale-out when HorizontalOptions.MaxReplicas is 0.
	Resources core.ResourceRange
	// MemGiBPerPod sizes pod memory (scheduling only; not billed).
	MemGiBPerPod float64
	// RestartSecondsPerPod is the per-pod rolling-update restart time
	// (≈300 s for Database A's strict HA flow, ≈120 s for Database B).
	RestartSecondsPerPod int64
	// InPlaceResize enables the K8s in-place pod resize feature (paper
	// §8 future work): resizes apply instantly with no restarts, no
	// dropped connections and no failovers.
	InPlaceResize bool
	// DecisionEverySeconds is the scaler cadence (600 s in the paper's
	// experiments).
	DecisionEverySeconds int64
	// BillingPeriod is the pay-as-you-go metering period.
	BillingPeriod time.Duration
	// DB configures the database service model.
	DB Options
	// Faults, when non-nil, injects failures into the run: failed and
	// stuck pod restarts (operator), scheduling pressure (cluster) and
	// metric sample loss (metrics server). Nil runs fault-free with the
	// hooks compiled down to nil checks.
	//
	// Deprecated: set RunHooks.FaultSpec (+ FaultSeed) instead and let the
	// harness build the injector; a prebuilt injector set here wins.
	Faults *faults.Injector
	// Events, when non-nil and enabled, receives the structured event
	// stream of the run: the scaler's decision/suppressed-decision
	// records, the operator's resize/rolling-update/failover lifecycle,
	// the fault injector's "fault.*" records, and the recommender's
	// decision audits (recommend.Instrumentable), all keyed on simulated
	// seconds.
	//
	// Deprecated: set RunHooks.Events instead; this alias shadows it and
	// wins when non-nil.
	Events obs.Sink
	// Metrics, when non-nil, receives the loop's runtime counters.
	//
	// Deprecated: set RunHooks.Metrics instead; this alias shadows it and
	// wins when non-nil.
	Metrics *obs.Registry
}

// Hooks resolves the effective telemetry/fault knobs: the deprecated
// top-level aliases overlaid on the embedded RunHooks. The deprecated
// prebuilt-injector field is resolved separately in RunLive.
func (o HarnessOptions) Hooks() hooks.RunHooks {
	return o.RunHooks.Merge(o.Events, o.Metrics, nil, 0)
}

// Range resolves the effective resource bounds: the deprecated scalar
// CPU fields overlay the vector (non-zero wins), the same merge
// sim.Options.Range and fleet.TenantSpec.Range perform.
func (o HarnessOptions) Range() core.ResourceRange {
	return o.Resources.MergeCPU(o.InitialCores, o.MinCores, o.MaxCores)
}

// DatabaseAOptions returns the paper's Database A setup: 3 replicas with
// strict HA (5–15 minute resizes) on the small cluster.
func DatabaseAOptions(initial, maxCores int) HarnessOptions {
	return HarnessOptions{
		Replicas:             3,
		InitialCores:         initial,
		MinCores:             2,
		MaxCores:             maxCores,
		MemGiBPerPod:         16,
		RestartSecondsPerPod: 300,
		DecisionEverySeconds: 600,
		BillingPeriod:        time.Hour,
		DB:                   DefaultOptions(),
	}
}

// DatabaseBOptions returns the paper's Database B setup: 2 read-only
// replicas with faster (3–5 minute) resizes.
func DatabaseBOptions(initial, maxCores int) HarnessOptions {
	o := DatabaseAOptions(initial, maxCores)
	o.Replicas = 2
	o.RestartSecondsPerPod = 120
	// "we set it up read-only across the 2 replicas" (§6.1): reads are
	// spread evenly, so half of them land on the secondary.
	o.DB.SecondaryReadFraction = 0.5
	return o
}

// LiveResult aggregates an end-to-end run: the database-level metrics of
// Tables 1–2 plus the autoscaling metrics the simulator also reports,
// enabling the §5 simulator-vs-live comparison.
type LiveResult struct {
	// DB is the transaction-level outcome.
	DB Stats
	// LimitsPerMinute is the set's whole-core limit each minute.
	LimitsPerMinute []float64
	// PrimaryUsagePerMinute is the primary's mean used cores per minute.
	PrimaryUsagePerMinute []float64
	// SumSlack / SumInsufficient are core-minutes of slack and clipped
	// demand on the primary (K and C in the paper's metric terms).
	SumSlack        float64
	SumInsufficient float64
	// NumScalings is the count of completed rolling updates.
	NumScalings int
	// Failovers is the count of primary hand-offs.
	Failovers int
	// DecisionsSuppressed counts decision ticks that landed during an
	// in-flight rolling update (recorded, never enacted).
	DecisionsSuppressed int
	// RestartRetries / ResizesAborted count the operator's backed-off
	// restart retries and abandoned rolling updates (0 without faults).
	RestartRetries int
	ResizesAborted int
	// FaultCounts tallies injected faults (zero without faults).
	FaultCounts faults.Counts
	// BilledCorePeriods is the pay-as-you-go cost at unit price.
	BilledCorePeriods float64
	// DecisionSeries is the scaler's recommendation at each tick.
	DecisionSeries []float64
}

// CostRatioVs returns cost(this)/cost(baseline).
func (r *LiveResult) CostRatioVs(baseline *LiveResult) float64 {
	if baseline.BilledCorePeriods == 0 {
		return 0
	}
	return r.BilledCorePeriods / baseline.BilledCorePeriods
}

// SlackReductionVs returns the fractional slack reduction vs a baseline.
func (r *LiveResult) SlackReductionVs(baseline *LiveResult) float64 {
	if baseline.SumSlack == 0 {
		return 0
	}
	return 1 - r.SumSlack/baseline.SumSlack
}

// RunLive executes the full Figure 1 loop for the schedule: load
// generator → database pods → cgroup capping → metrics server →
// recommender → scaler → operator rolling updates, with billing metered
// on the set's limits. One tick is one second.
func RunLive(sched *workload.LoadSchedule, rec recommend.Recommender, opts HarnessOptions) (*LiveResult, error) {
	if sched == nil {
		return nil, fmt.Errorf("dbsim: nil schedule: %w", errs.ErrInvalidConfig)
	}
	if rec == nil {
		return nil, fmt.Errorf("dbsim: nil recommender: %w", errs.ErrInvalidConfig)
	}
	// Resolve the telemetry/fault knobs once: deprecated aliases overlay
	// the embedded RunHooks. The deprecated Faults field carries a prebuilt
	// injector and wins outright; otherwise one is built from the hooks'
	// spec and seed (nil — the fault-free fast path — when the spec is
	// empty).
	h := opts.Hooks()
	inj := opts.Faults
	if inj == nil {
		inj = h.Injector()
	}
	cluster := opts.Cluster
	if cluster == nil {
		cluster = k8s.SmallCluster()
	}
	set, err := k8s.NewStatefulSet("db", opts.Replicas, opts.InitialCores, opts.MemGiBPerPod, cluster)
	if err != nil {
		return nil, err
	}
	op, err := k8s.NewOperator(set, cluster, opts.RestartSecondsPerPod)
	if err != nil {
		return nil, err
	}
	op.InPlace = opts.InPlaceResize
	ms := k8s.NewMetricsServer(60)
	scaler, err := k8s.NewScaler(rec, op, ms, opts.DecisionEverySeconds, opts.MinCores, opts.MaxCores)
	if err != nil {
		return nil, err
	}
	op.Events, op.Stats = h.Events, h.Metrics
	scaler.Events, scaler.Stats = h.Events, h.Metrics
	if inj != nil {
		inj.Events, inj.Stats = h.Events, h.Metrics
		op.Faults = inj
		ms.Faults = inj
	}
	if obs.Enabled(h.Events) {
		if in, ok := rec.(recommend.Instrumentable); ok {
			in.SetEventSink(h.Events)
		}
	}
	db, err := New(set, sched, opts.DB)
	if err != nil {
		return nil, err
	}
	op.OnPodDown = db.OnPodDown

	period := opts.BillingPeriod
	if period == 0 {
		period = time.Hour
	}
	meter, err := billing.NewMeter(1, period, time.Second)
	if err != nil {
		return nil, err
	}

	seconds := int64(sched.Duration / time.Second)
	res := &LiveResult{}
	var minuteLimit, minuteUsage float64
	var lastThrottled, lastUsed float64

	for now := int64(0); now < seconds; now++ {
		op.Tick(now)
		db.Tick(now, ms)
		scaler.Tick(now)

		limit := float64(set.CPULimit())
		meter.Record(limit)

		// Primary-side slack/insufficiency accounting (core-seconds).
		if p := set.Primary(); p != nil {
			dThrottled := p.ThrottledCPUSeconds - lastThrottled
			dUsed := p.UsedCPUSeconds - lastUsed
			// A failover switches pods; re-baseline on role change by
			// detecting negative deltas.
			if dThrottled < 0 || dUsed < 0 {
				dThrottled, dUsed = 0, 0
			}
			lastThrottled = p.ThrottledCPUSeconds
			lastUsed = p.UsedCPUSeconds
			res.SumInsufficient += dThrottled / 60 // core-minutes
			if slack := limit - dUsed; slack > 0 {
				res.SumSlack += slack / 60
			}
			minuteUsage += dUsed
		}
		minuteLimit += limit

		if (now+1)%60 == 0 {
			res.LimitsPerMinute = append(res.LimitsPerMinute, minuteLimit/60)
			res.PrimaryUsagePerMinute = append(res.PrimaryUsagePerMinute, minuteUsage/60)
			minuteLimit, minuteUsage = 0, 0
		}
	}

	meter.Flush()
	res.DB = db.Stats()
	res.NumScalings = op.ResizeCount
	res.Failovers = op.FailoverCount
	res.DecisionsSuppressed = scaler.DecisionsSuppressed
	res.RestartRetries = op.RestartRetries
	res.ResizesAborted = op.ResizesAborted
	res.FaultCounts = inj.Counts()
	res.BilledCorePeriods = meter.BilledCorePeriods()
	res.DecisionSeries = append([]float64(nil), scaler.DecisionSeries...)
	if m := h.Metrics; m != nil {
		m.Counter("live.seconds").Add(seconds)
		m.Counter("live.resizes").Add(int64(op.ResizeCount))
		m.Counter("live.failovers").Add(int64(op.FailoverCount))
	}
	return res, nil
}
