#!/bin/sh
# Serve smoke gate: boot caasper-serve on an ephemeral port, replay two
# tenants' traces through the caasper-fleet load generator, and require
# the explained decision streams (concatenated per-tenant GETs) to be
# byte-identical to the checked-in golden. Then SIGTERM the server and
# require a valid, complete snapshot — the graceful-drain contract.
#
#   sh scripts/serve.sh            # verify against testdata/serve golden
#   UPDATE=1 sh scripts/serve.sh   # regenerate the golden
set -eu

cd "$(dirname "$0")/.."

OUT=$(mktemp -d)
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$OUT"
}
trap cleanup EXIT

echo "==> building caasper-serve and caasper-fleet"
go build -o "$OUT/caasper-serve" ./cmd/caasper-serve
go build -o "$OUT/caasper-fleet" ./cmd/caasper-fleet

echo "==> starting caasper-serve (ephemeral port, snapshot on shutdown)"
"$OUT/caasper-serve" -addr 127.0.0.1:0 -addr-file "$OUT/addr.txt" \
    -snapshot "$OUT/serve.snapshot" >"$OUT/serve.log" 2>&1 &
SERVE_PID=$!

# Wait for the listener (the address file is written post-bind).
i=0
while [ ! -s "$OUT/addr.txt" ]; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && { echo "server never bound"; cat "$OUT/serve.log"; exit 1; }
    sleep 0.1
done
ADDR=$(cat "$OUT/addr.txt")
BASE="http://$ADDR"

echo "==> load-generating 2 tenants x 360 samples against $BASE"
"$OUT/caasper-fleet" -target "$BASE" -tenants 2 -minutes 360 -batch 60 -conns 2 \
    -recommender caasper >"$OUT/loadgen.log"

# Ingest is asynchronous: wait until both tenants' sample clocks reach
# the full stream before reading decisions.
for T in t00 t01; do
    i=0
    until curl -sf "$BASE/v1/tenants/$T" | grep -q '"samples":360'; do
        i=$((i + 1))
        [ "$i" -gt 50 ] && { echo "tenant $T never drained"; exit 1; }
        sleep 0.1
    done
done

: > "$OUT/decisions.ndjson"
for T in t00 t01; do
    curl -sf "$BASE/v1/tenants/$T/decisions?explain=1" >> "$OUT/decisions.ndjson"
done
wc -l "$OUT/decisions.ndjson"

echo "==> graceful shutdown (SIGTERM -> drain -> snapshot)"
kill -TERM "$SERVE_PID"
i=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "server never exited"; exit 1; }
    sleep 0.1
done
SERVE_PID=""

head -1 "$OUT/serve.snapshot" | grep -q '"format":"caasper-serve"' \
    || { echo "snapshot missing or malformed"; exit 1; }
head -1 "$OUT/serve.snapshot" | grep -q '"tenants":2' \
    || { echo "snapshot tenant count wrong"; head -1 "$OUT/serve.snapshot"; exit 1; }
echo "==> snapshot valid ($(wc -l < "$OUT/serve.snapshot") lines)"

GOLD=testdata/serve
if [ "${UPDATE:-0}" = "1" ]; then
    mkdir -p "$GOLD"
    cp "$OUT/decisions.ndjson" "$GOLD/decisions.golden.ndjson"
    wc -l "$GOLD/decisions.golden.ndjson"
    echo "==> golden regenerated in $GOLD/"
    exit 0
fi

diff -u "$GOLD/decisions.golden.ndjson" "$OUT/decisions.ndjson"
echo "==> OK: decision streams byte-identical to golden; drain left a valid snapshot"
