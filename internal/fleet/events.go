// Discrete-event fleet engine (Options.Engine == EngineEvents).
//
// The stepped engine costs O(minutes × tenants): every tenant executes
// every simulated minute even when nothing about it can change. But a
// tenant's observable behaviour only changes at a handful of instants —
// its decision ticks, its trace's inflection points (the starts of
// constant-demand runs), and pressure-window boundaries of the fleet-level
// fault injector. Between those instants the demand, the limit, the
// observed usage and therefore every accumulator update are all constant,
// which makes the in-between minutes pure arithmetic.
//
// This engine exploits that: a virtual clock jumps from decision tick to
// decision tick through a binary-heap wake queue keyed on (minute, tenant
// index). A tenant woken at tick d first catches up analytically — its
// trace is walked run by run (trace.RunStarts), observation windows are
// advanced with one bulk ring append per run (recommend.RunObserver),
// accounting loops run as tight constant-operand sums (preserving the
// stepped engine's exact float rounding), and billing advances whole
// periods at a time (billing.Meter.RecordN). It then decides exactly as
// the stepped engine would and computes its next wake-up:
//
//   - a tenant that filed a proposal, or whose recommender cannot prove
//     steadiness, wakes at the very next decision tick;
//   - a tenant that filed nothing and whose recommender reports
//     SteadyObserving(u) — a saturated window of nothing but the current
//     usage u, with a pure Recommend — provably re-decides "hold" at every
//     tick until its demand next changes, so it sleeps until the first
//     decision tick at or after its trace's next inflection point.
//
// Fault draws are (seed, kind, pod, time)-keyed and stateless, so skipped
// minutes draw identically when caught up later: metrics-gap minutes are
// pre-scheduled with a pure probe (faults.Injector.NextGap) so gap-heavy
// tenants keep the bulk catch-up path between the minutes that actually
// drop, and the fleet-level scheduling pressure advances one poll per
// window (faults.Injector.AdvancePressure). Per-tenant fault events land
// in the same per-tenant buffers the stepped engine uses, so the replayed
// NDJSON stream is byte-identical, at every worker count.
package fleet

import (
	"context"

	"caasper/internal/faults"
	"caasper/internal/parallel"
	"caasper/internal/recommend"
	"caasper/internal/trace"
)

// wakeEntry is one pending wake-up: tenant idx runs at minute at.
type wakeEntry struct {
	at  int32
	idx int32
}

// wakeHeap is a binary min-heap of wake-ups ordered by (at, idx). The
// secondary key makes same-tick pops emerge in ascending tenant order, so
// the awake list needs no post-sort to match the stepped engine's
// index-ordered walk.
type wakeHeap []wakeEntry

func wakeLess(a, b wakeEntry) bool {
	return a.at < b.at || (a.at == b.at && a.idx < b.idx)
}

func (h *wakeHeap) push(e wakeEntry) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !wakeLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *wakeHeap) pop() wakeEntry {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && wakeLess(q[l], q[m]) {
			m = l
		}
		if r < n && wakeLess(q[r], q[m]) {
			m = r
		}
		if m == i {
			return top
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
}

// nextDecisionAt returns the first decision minute ≥ m within the horizon,
// or −1 when the replay ends first — the same arithmetic the stepped
// engine uses to bound its segments (first minute ≥ max(m, warmup) with
// (minute − warmup) divisible by the cadence).
func (s *runState) nextDecisionAt(m int) int {
	nd := s.warmup
	if m > s.warmup {
		nd = s.warmup + (m-s.warmup+s.d-1)/s.d*s.d
	}
	if nd >= s.minutes {
		return -1
	}
	return nd
}

// prepEvents initializes the per-tenant event-engine state shared by the
// single-shard and sharded loops.
func (s *runState) prepEvents() {
	// Trace run starts are shared: fleets commonly replay a few workload
	// shapes across many tenants, so the inflection scan runs once per
	// distinct trace, not once per tenant.
	runsByTrace := make(map[*trace.Trace][]int32)
	for _, t := range s.ts {
		r, ok := runsByTrace[t.spec.Trace]
		if !ok {
			r = t.spec.Trace.RunStarts()
			runsByTrace[t.spec.Trace] = r
		}
		t.runs = r
		t.gap = t.inj.Has(faults.MetricsGap)
		t.bulk, _ = t.rec.(recommend.RunObserver)
		t.steady, _ = t.rec.(recommend.SteadyObserver)
		// The limit is cached on the tenant: chasing set → pod → spec is
		// two dependent cache misses per wake at fleet scale, and only a
		// phase-2 enactment — which requires a proposal from an awake
		// tenant — can change it.
		t.lim = t.set.CPULimit()
	}
}

// uniformWake reports the single minute every awake tenant re-wakes at,
// or −1 when the wakes diverge (or any tenant sleeps forever). When the
// wake heap is empty, the awake list holds every live tenant, so a
// uniform wake means the next tick's awake set is *this* list verbatim —
// the tick loops skip the heap round-trip entirely. Noisy fleets, whose
// tenants can never prove steadiness and therefore all march tick to
// tick in lockstep, spend their whole run on this path.
func uniformWake(ts []*tenant, awake []int) int {
	w := ts[awake[0]].wakeAt
	if w < 0 {
		return -1
	}
	for _, i := range awake[1:] {
		if ts[i].wakeAt != w {
			return -1
		}
	}
	return w
}

// runEvents is the discrete-event engine dispatcher: it preps the
// per-tenant event state, then — unless Options.Sharding is off — splits
// the fleet into node-disjoint shard groups and runs them concurrently
// (shard.go). Fleets that form a single contention group (and one-tenant
// fleets) fall through to the single-shard reference loop.
func (s *runState) runEvents() error {
	s.prepEvents()
	if s.shard != ShardingOff {
		if idxs, offsets := shardPartition(s.ts); len(offsets) > 2 {
			return s.runEventsSharded(idxs, offsets)
		}
	}
	return s.runEventsSingle()
}

// runEventsSingle is the single-shard discrete-event loop. See the file
// comment for the design and the equivalence argument.
func (s *runState) runEventsSingle() error {
	ts := s.ts
	ctx := context.Background()

	var heap wakeHeap
	if d0 := s.nextDecisionAt(0); d0 >= 0 {
		// Every tenant's first wake is the first decision tick. Equal keys
		// in index order are already a valid min-heap. Each tenant holds at
		// most one pending wake, so the heap never outgrows this backing.
		heap = make(wakeHeap, len(ts))
		for i := range ts {
			heap[i] = wakeEntry{at: int32(d0), idx: int32(i)}
		}
	}

	// clock tracks fleet-level pressure coverage: windows overlapping
	// [0, clock) have been polled, in order, exactly once.
	clock := 0
	pressure := 0.0
	awake := make([]int, 0, len(ts))

	for len(heap) > 0 {
		d := int(heap[0].at)
		awake = awake[:0]
		for len(heap) > 0 && int(heap[0].at) == d {
			awake = append(awake, int(heap.pop().idx))
		}

		for {
			// Catch the fleet-level scheduling pressure up through the
			// decision minute — one draw per window, same stream as the
			// stepped engine's per-minute polling. Pressure edges for minutes
			// ≤ d are emitted before this tick's phase-2 events, exactly as
			// the stepped segment prologue interleaves them.
			if s.finj != nil {
				pressure = s.finj.AdvancePressure(int64(clock), int64(d+1))
				s.cluster.SetPressure(pressure)
			}
			clock = d + 1

			// Severity is defined as the insufficiency since the previous
			// decision tick — even for tenants that slept through it — so
			// catch-up accumulates it only from sevFrom on.
			sevFrom := d - s.d + 1
			if d == s.warmup {
				sevFrom = 0 // first decision: severity covers the warm-up
			}

			// Phase 1 — parallel catch-up + decide over the awake tenants
			// only. Each task touches one tenant's state; sleeping tenants are
			// untouched and, by the sleep contract, unchanged.
			err := parallel.ForEach(ctx, len(awake), s.workers, func(k int) error {
				t := ts[awake[k]]
				t.advanceTo(d+1, sevFrom)
				limit := t.lim
				t.hasProp = false
				t.decide(limit)
				t.computeWake(s, d, limit)
				return nil
			})
			if err != nil {
				return err
			}

			// Phase 2 — sequential, over the awake subset (ascending index,
			// courtesy of the heap's secondary key). Tenants asleep at d hold
			// no proposal, so the stepped engine's full walk degenerates to
			// exactly this subset.
			s.enactTick(awake, pressure, d)

			for _, i := range awake {
				t := ts[i]
				if t.hasProp {
					// Only proposers can have been resized by enactPhase
					// (granted, deferred or fault-aborted — re-read either way).
					t.lim = t.set.CPULimit()
				}
			}

			if len(heap) == 0 {
				if w := uniformWake(ts, awake); w >= 0 {
					d = w // lockstep fleet: rerun the tick loop on the same list
					continue
				}
			}
			for _, i := range awake {
				if w := ts[i].wakeAt; w >= 0 {
					heap.push(wakeEntry{at: int32(w), idx: int32(i)})
				}
			}
			break
		}
	}

	// Horizon epilogue: finish the pressure coverage and account every
	// tenant's tail minutes after its last wake. Severity after the final
	// decision is never read, so catch-up skips it (sevFrom = minutes).
	if s.finj != nil && clock < s.minutes {
		pressure = s.finj.AdvancePressure(int64(clock), int64(s.minutes))
		s.cluster.SetPressure(pressure)
	}
	return parallel.ForEach(ctx, len(ts), s.workers, func(i int) error {
		ts[i].advanceTo(s.minutes, s.minutes)
		return nil
	})
}

// advanceTo replays the tenant's minutes [done, end) analytically, run by
// run. Within one constant-demand run the limit (only phase 2 changes it,
// and this tenant filed no proposals while asleep), the usage and every
// per-minute arithmetic operand are constant, so:
//
//   - the observation window advances with one bulk append (RunObserver) —
//     metrics-gap tenants first fire their pre-scheduled gap draws
//     (NextGap probe, then DropSample per gap minute for counts and
//     events) and split the append around a first-minute gap, which is
//     the only minute whose observed value a gap can change; only a
//     recommender without the bulk form runs the stepped engine's
//     per-minute scrape loop verbatim;
//   - slack/insufficiency accumulate via tight constant-operand loops:
//     repeated float64 addition has no closed form that reproduces the
//     same rounding, and bit-equality with the stepped engine is the
//     contract, so the adds happen one by one — just without the
//     surrounding per-minute bookkeeping (the accumulator sequences per
//     variable are identical because a run is entirely slack or entirely
//     short, never both);
//   - billing advances whole periods at a time (RecordN).
//
// Severity accumulates only for minutes ≥ sevFrom (the minute after the
// previous decision tick): the stepped engine resets severity at every
// tick, including ones this tenant slept through.
func (t *tenant) advanceTo(end, sevFrom int) {
	if t.done >= end {
		return
	}
	limf := float64(t.lim)
	vs := t.spec.Trace.Values
	// The accumulators live in locals for the duration of the walk: the
	// tight loops below are dependent float-add chains, and keeping them
	// out of memory halves the per-minute cost. The add sequences are
	// unchanged.
	sumSlack := t.res.SumSlack
	sumShort := t.res.SumInsufficient
	sev := t.severity
	for t.done < end {
		now := t.done
		for t.runCur+1 < len(t.runs) && int(t.runs[t.runCur+1]) <= now {
			t.runCur++
		}
		re := len(vs)
		if t.runCur+1 < len(t.runs) {
			re = int(t.runs[t.runCur+1])
		}
		if re > end {
			re = end
		}
		n := re - now
		demand := vs[now]
		usage := demand
		if usage > limf {
			usage = limf
		}

		if t.bulk == nil {
			// Per-minute scrape: a recommender without ObserveRun needs its
			// per-minute calls (and its per-minute gap draws with them).
			for m := now; m < re; m++ {
				observed := usage
				if t.inj.DropSample(t.pod, int64(m)) {
					observed = t.prevUsage
				}
				t.prevUsage = usage
				t.rec.Observe(m, observed)
			}
		} else if t.gap {
			// Pre-scheduled gaps: within this walk the usage is constant, so
			// after its first minute prevUsage == usage and a dropped sample
			// observes the very value an intact one would — only a gap at
			// the first minute (where prevUsage may still hold the previous
			// run's usage) changes an observation. Probe the exact gap
			// minutes (NextGap), fire DropSample at each so counts and
			// events land per minute exactly as the per-minute loop's, and
			// advance the window in at most two bulk appends.
			first := int64(-1)
			for g := t.inj.NextGap(t.pod, int64(now), int64(re)); g >= 0; g = t.inj.NextGap(t.pod, g+1, int64(re)) {
				t.inj.DropSample(t.pod, g)
				if first < 0 {
					first = g
				}
			}
			if first == int64(now) && t.prevUsage != usage {
				t.rec.Observe(now, t.prevUsage)
				if n > 1 {
					t.bulk.ObserveRun(now+1, usage, n-1)
				}
			} else {
				t.bulk.ObserveRun(now, usage, n)
			}
			t.prevUsage = usage
		} else {
			t.prevUsage = usage
			t.bulk.ObserveRun(now, usage, n)
		}

		if slack := limf - usage; slack > 0 {
			for k := 0; k < n; k++ {
				sumSlack += slack
			}
		}
		if short := demand - limf; short > 0 {
			for k := 0; k < n; k++ {
				sumShort += short
			}
			t.res.ThrottledMinutes += n
			lo := now
			if sevFrom > lo {
				lo = sevFrom
			}
			for k := lo; k < re; k++ {
				sev += short
			}
		}
		t.meter.RecordN(limf, n)
		t.done = re
	}
	t.res.SumSlack = sumSlack
	t.res.SumInsufficient = sumShort
	t.severity = sev
}

// computeWake sets the tenant's next wake minute after deciding at tick d.
// The default is the next decision tick. The tenant may sleep past it only
// when every skipped tick provably replays "hold": it filed no proposal at
// d (so the limit stays put), its recommender asserts SteadyObserving(u)
// for the current usage u (pure Recommend over a saturated all-u window),
// and its demand — hence u — is constant until the trace's next inflection
// point. Under those three facts each skipped tick sees the identical
// (window, limit) input and yields the identical "hold", so the first tick
// at which anything can differ is the first one at or after the next
// inflection.
func (t *tenant) computeWake(s *runState, d, limit int) {
	t.wakeAt = s.nextDecisionAt(d + 1)
	if t.wakeAt < 0 || t.hasProp || t.steady == nil {
		return
	}
	limf := float64(limit)
	u := t.spec.Trace.Values[d]
	if u > limf {
		u = limf
	}
	if !t.steady.SteadyObserving(u) {
		return
	}
	ni := len(t.spec.Trace.Values) // no further inflection: sleep forever
	if t.runCur+1 < len(t.runs) {
		ni = int(t.runs[t.runCur+1])
	}
	t.wakeAt = s.nextDecisionAt(ni)
}
