package experiments

import (
	"fmt"
	"strings"

	"caasper/internal/core"
	"caasper/internal/pvp"
	"caasper/internal/workload"
)

// Figure4Result holds the slope-driven single-step scale-up example of
// Figure 4: a customer capped at 3 cores whose PvP-curve slope triggers a
// multi-core jump that right-sizes the pod in one decision.
type Figure4Result struct {
	// Slope and Skew are the curve readings at the 3-core allocation.
	Slope, Skew float64
	// RawSF is the fractional Eq. 3 scaling factor (paper: 3.73).
	RawSF float64
	// TargetCores is the decision (paper: 6 after rounding down).
	TargetCores int
	// PostScaleThrottled reports whether the workload still throttles
	// at the new allocation.
	PostScaleThrottled bool
	Report             string
}

// Figure4 reproduces the Figure 4 scale-up-at-inflection example.
func Figure4(seed uint64) (*Figure4Result, error) {
	capped := workload.ThrottledAt3(seed)
	cfg := core.DefaultConfig(16)
	// Calibrated as in the paper's example: the skew weight derived from
	// observing expert customers makes ln(skew·s + c_min) land at ≈3.7
	// for a hard-capped 3-core workload, which rounds down to a +3 jump.
	cfg.SF.SkewWeight = 0.7
	rec, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	d, err := rec.Decide(3, capped.Values)
	if err != nil {
		return nil, err
	}

	// Post-decision check: the true ~6-core demand against the new
	// allocation.
	demand := workload.Render("demand", workload.Constant(6), 60)
	throttled := false
	for _, v := range demand.Values {
		if v > float64(d.TargetCores) {
			throttled = true
			break
		}
	}

	res := &Figure4Result{
		Slope:              d.Slope,
		Skew:               d.Skew,
		RawSF:              d.RawSF,
		TargetCores:        d.TargetCores,
		PostScaleThrottled: throttled,
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — slope-driven scale-up from a 3-core cap\n")
	fmt.Fprintf(&b, "slope s=%.2f skew=%.2f SF=%.2f -> target %d cores (branch %s)\n",
		d.Slope, d.Skew, d.RawSF, d.TargetCores, d.Branch)
	fmt.Fprintf(&b, "explanation: %s\n", d.Explanation)
	fmt.Fprintf(&b, "paper: slope 1.38 -> SF 3.73 -> rounded to 6 cores, post-scale utilization fits\n")
	res.Report = b.String()
	return res, nil
}

// Figure5Result holds the two PvP-curve examples of Figure 5: a workload
// throttled at its 8-core limit (steep slope) and a right-sized workload
// at 32 cores (moderate slope).
type Figure5Result struct {
	// ThrottledSlope is the slope at 8 cores on the capped trace.
	ThrottledSlope float64
	// HealthySlope is the slope at 32 cores on the healthy trace.
	HealthySlope float64
	// ThrottledCurve and HealthyCurve are the full curves (the figure's
	// right column).
	ThrottledCurve, HealthyCurve *pvp.Curve
	Report                       string
}

// Figure5 reproduces the two curves of Figure 5.
func Figure5(seed uint64) (*Figure5Result, error) {
	capped := workload.ThrottledAt8(seed)
	healthy := workload.HealthyAt32(seed)

	tc, err := pvp.BuildCurve(capped.Values, pvp.SKURange{MinCores: 1, MaxCores: 32})
	if err != nil {
		return nil, err
	}
	hc, err := pvp.BuildCurve(healthy.Values, pvp.SKURange{MinCores: 1, MaxCores: 40})
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{
		ThrottledSlope: tc.SlopeAt(8),
		HealthySlope:   hc.SlopeAt(32),
		ThrottledCurve: tc,
		HealthyCurve:   hc,
	}
	tb := NewTable("Figure 5 — PvP curves for a throttled and a right-sized workload",
		"workload", "limit", "slope at limit", "perf at limit", "perf one core up")
	tb.AddRow("throttled (capped at 8)", 8, res.ThrottledSlope, tc.Performance(8), tc.Performance(9))
	tb.AddRow("right-sized (32 cores)", 32, res.HealthySlope, hc.Performance(32), hc.Performance(33))
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("paper: the throttled workload shows a steep slope at its limit; the right-sized one neither steep nor flat\n")
	res.Report = b.String()
	return res, nil
}

// Figure6Result tabulates the scaling-factor function SF(s) of Figure 6.
type Figure6Result struct {
	Slopes, Factors []float64
	Report          string
}

// Figure6 reproduces the SF(s) shape: logarithmic decay, aggressive for
// large slopes and gentle near zero.
func Figure6() *Figure6Result {
	params := pvp.ScalingFactorParams{CMin: 2, SkewWeight: 8}
	slopes, factors := pvp.ScalingFactorCurve(1.0, params, 10, 21)
	res := &Figure6Result{Slopes: slopes, Factors: factors}
	tb := NewTable("Figure 6 — scaling factor SF(s) over PvP-curve slope s", "slope s", "SF (cores)")
	for i := range slopes {
		tb.AddRow(slopes[i], factors[i])
	}
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("paper: logarithmic decay - large s scales up aggressively, small s makes micro-adjustments\n")
	res.Report = b.String()
	return res
}

// Figure7Result holds the two curve shapes of Figure 7: a typical
// under-provisioned curve (positive slope at the allocation) and a flat
// over-provisioned tail whose walk-down recommends a large single-step
// scale-down.
type Figure7Result struct {
	// UnderSlope is the slope at the under-provisioned allocation.
	UnderSlope float64
	// OverSlope is the slope on the flat tail (0).
	OverSlope float64
	// WalkDownDelta is the recommended scale-down from 12 cores
	// (paper: "almost 8 cores").
	WalkDownDelta int
	Report        string
}

// Figure7 reproduces the Figure 7 curve-shape contrast.
func Figure7(seed uint64) (*Figure7Result, error) {
	under := workload.ThrottledAt3(seed)
	over := workload.OverProvisionedAt12(seed)

	uc, err := pvp.BuildCurve(under.Values, pvp.SKURange{MinCores: 1, MaxCores: 16})
	if err != nil {
		return nil, err
	}
	rec, err := core.New(core.DefaultConfig(16))
	if err != nil {
		return nil, err
	}
	d, err := rec.Decide(12, over.Values)
	if err != nil {
		return nil, err
	}
	oc, err := pvp.BuildCurve(over.Values, pvp.SKURange{MinCores: 1, MaxCores: 16})
	if err != nil {
		return nil, err
	}

	res := &Figure7Result{
		UnderSlope:    uc.SlopeAt(3),
		OverSlope:     oc.SlopeAt(12),
		WalkDownDelta: d.Delta,
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — typical vs flat PvP curves\n")
	fmt.Fprintf(&b, "under-provisioned: slope at 3 cores = %.2f (positive -> scale-up territory)\n", res.UnderSlope)
	fmt.Fprintf(&b, "over-provisioned:  slope at 12 cores = %.2f (flat tail) -> walk-down %+d cores (branch %s)\n",
		res.OverSlope, d.Delta, d.Branch)
	fmt.Fprintf(&b, "explanation: %s\n", d.Explanation)
	fmt.Fprintf(&b, "paper: the flat-tail walk-down recommends scaling down by almost 8 cores\n")
	res.Report = b.String()
	return res, nil
}
