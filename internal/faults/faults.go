// Package faults is the seeded, deterministic fault-injection layer of
// the Kubernetes-like substrate. The paper's whole argument rests on
// CaaSPER staying safe when the platform misbehaves — resizes take 5–15
// minutes, restarts drop connections, and capped usage hides true demand
// (§2.2, §3.3) — yet a fault-free control plane never exercises any of
// those paths. This package makes the substrate misbehave *reproducibly*:
// a fixed seed yields the same injected faults on every run, at any
// worker count, because every draw is keyed on (seed, fault kind, pod,
// simulated time) rather than on a shared sequential stream. Call order
// therefore cannot perturb the outcome, which keeps the golden NDJSON
// event-stream contract of internal/obs intact under chaos.
//
// Five fault kinds are modelled, selected with a small spec grammar
// (comma-separated faults, colon-separated key=value parameters):
//
//	restart-fail:p=0.1              a pod restart attempt fails outright
//	restart-stuck:p=0.05:dur=600    an attempt hangs dur extra seconds
//	metrics-gap:p=0.02              a usage sample is dropped (scrape miss)
//	sched-pressure:p=1:cores=4:dur=300
//	                                transient co-tenant pressure steals
//	                                cores of free capacity per node for
//	                                dur-second windows
//	mem-pressure:p=0.5:gb=2:dur=300
//	                                phantom resident memory inflates a
//	                                pod's RAM usage by gb GB during
//	                                active dur-second windows (RAM-aware
//	                                layers only)
//
// With no spec the injector is nil and every hook compiles down to a
// nil-receiver check — the fault-free path costs one branch and the
// existing golden streams are unchanged.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"caasper/internal/obs"
)

// Kind names one injectable fault class.
type Kind string

// The injectable fault kinds.
const (
	// RestartFail makes a pod restart attempt fail at completion time.
	RestartFail Kind = "restart-fail"
	// RestartStuck extends a restart attempt by Dur seconds (a hung
	// container that the operator's per-attempt timeout must catch).
	RestartStuck Kind = "restart-stuck"
	// MetricsGap drops a usage sample before the metrics server sees it
	// (a scrape miss), producing partial or wholly silent buckets.
	MetricsGap Kind = "metrics-gap"
	// SchedPressure steals Cores of free capacity on every node during
	// active Dur-second windows — Rodriguez & Buyya's "scheduling
	// failures under node pressure are the common case" made concrete.
	SchedPressure Kind = "sched-pressure"
	// MemPressure adds GB of phantom resident memory to a pod during
	// active Dur-second windows (a leaky co-process, page-cache bloat, a
	// runaway query plan) — the OOM-style scenario the multi-resource
	// decision loop has to absorb. Only layers that model RAM query it;
	// CPU-only runs never draw, so their streams are untouched.
	MemPressure Kind = "mem-pressure"
)

// Fault is one parsed fault with its parameters.
type Fault struct {
	// Kind selects the fault class.
	Kind Kind
	// P is the per-draw probability in [0, 1].
	P float64
	// Dur is the fault duration in seconds (stuck time for
	// restart-stuck, window length for sched-pressure). Layers whose
	// native unit is minutes convert (internal/sim divides by 60).
	Dur int64
	// Cores is the per-node capacity stolen by sched-pressure.
	Cores float64
	// GB is the phantom resident memory added by mem-pressure.
	GB float64
}

// defaults returns the parameter defaults for a kind.
func defaults(k Kind) (Fault, error) {
	switch k {
	case RestartFail:
		return Fault{Kind: k, P: 0.1}, nil
	case RestartStuck:
		return Fault{Kind: k, P: 0.05, Dur: 600}, nil
	case MetricsGap:
		return Fault{Kind: k, P: 0.02}, nil
	case SchedPressure:
		return Fault{Kind: k, P: 1, Dur: 300, Cores: 4}, nil
	case MemPressure:
		return Fault{Kind: k, P: 0.5, Dur: 300, GB: 2}, nil
	default:
		return Fault{}, fmt.Errorf("faults: unknown fault kind %q", k)
	}
}

// Spec is a parsed fault specification: at most one fault per kind.
type Spec struct {
	faults map[Kind]Fault
}

// ParseSpec parses the -faults grammar. An empty string yields a nil
// Spec (fault-free).
func ParseSpec(s string) (*Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	spec := &Spec{faults: map[Kind]Fault{}}
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		f, err := defaults(Kind(parts[0]))
		if err != nil {
			return nil, err
		}
		if _, dup := spec.faults[f.Kind]; dup {
			return nil, fmt.Errorf("faults: duplicate fault %q", f.Kind)
		}
		for _, kv := range parts[1:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faults: %s: parameter %q is not key=value", f.Kind, kv)
			}
			switch key {
			case "p":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("faults: %s: p=%q is not a probability in [0,1]", f.Kind, val)
				}
				f.P = p
			case "dur":
				d, err := strconv.ParseInt(val, 10, 64)
				if err != nil || d < 1 {
					return nil, fmt.Errorf("faults: %s: dur=%q is not a positive second count", f.Kind, val)
				}
				f.Dur = d
			case "cores":
				c, err := strconv.ParseFloat(val, 64)
				if err != nil || c <= 0 {
					return nil, fmt.Errorf("faults: %s: cores=%q is not a positive core count", f.Kind, val)
				}
				f.Cores = c
			case "gb":
				g, err := strconv.ParseFloat(val, 64)
				if err != nil || g <= 0 {
					return nil, fmt.Errorf("faults: %s: gb=%q is not a positive GB count", f.Kind, val)
				}
				f.GB = g
			default:
				return nil, fmt.Errorf("faults: %s: unknown parameter %q", f.Kind, key)
			}
		}
		spec.faults[f.Kind] = f
	}
	if len(spec.faults) == 0 {
		return nil, errors.New("faults: empty spec")
	}
	return spec, nil
}

// Empty reports whether the spec injects nothing.
func (s *Spec) Empty() bool { return s == nil || len(s.faults) == 0 }

// Get returns the fault of the given kind and whether it is present.
func (s *Spec) Get(k Kind) (Fault, bool) {
	if s == nil {
		return Fault{}, false
	}
	f, ok := s.faults[k]
	return f, ok
}

// String renders the spec back in grammar form, kinds sorted, so logs
// and run summaries are stable.
func (s *Spec) String() string {
	if s.Empty() {
		return ""
	}
	kinds := make([]string, 0, len(s.faults))
	for k := range s.faults {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var b strings.Builder
	for i, k := range kinds {
		if i > 0 {
			b.WriteByte(',')
		}
		f := s.faults[Kind(k)]
		fmt.Fprintf(&b, "%s:p=%s", k, strconv.FormatFloat(f.P, 'g', -1, 64))
		if f.Kind == RestartStuck || f.Kind == SchedPressure || f.Kind == MemPressure {
			fmt.Fprintf(&b, ":dur=%d", f.Dur)
		}
		if f.Kind == SchedPressure {
			fmt.Fprintf(&b, ":cores=%s", strconv.FormatFloat(f.Cores, 'g', -1, 64))
		}
		if f.Kind == MemPressure {
			fmt.Fprintf(&b, ":gb=%s", strconv.FormatFloat(f.GB, 'g', -1, 64))
		}
	}
	return b.String()
}

// Counts aggregates injected faults for end-of-run chaos summaries.
type Counts struct {
	// RestartFails, RestartStucks and MetricsGaps count injected faults.
	RestartFails, RestartStucks, MetricsGaps int64
	// PressureWindows counts activated sched-pressure windows.
	PressureWindows int64
	// MemPressureWindows counts activated mem-pressure windows.
	MemPressureWindows int64
}

// Any reports whether any fault was injected.
func (c Counts) Any() bool {
	return c.RestartFails+c.RestartStucks+c.MetricsGaps+c.PressureWindows+c.MemPressureWindows > 0
}

// Injector draws injected faults deterministically. The zero-cost
// contract: a nil *Injector is valid and injects nothing, so callers hold
// one pointer and the fault-free path is a single nil check per hook.
//
// Determinism contract (same as PR 2's golden NDJSON test): every draw
// seeds a fresh stdlib math/rand PRNG from a mix of (seed, kind, pod,
// simulated time), so a fixed seed yields a byte-identical fault stream
// at any worker count and in any query order. The injector itself is
// queried from the single-threaded control loop of one run; concurrent
// runs each own their injector.
type Injector struct {
	spec *Spec
	seed uint64

	// Events, when non-nil and enabled, receives one "fault.*" event per
	// injected fault, keyed on simulated seconds.
	Events obs.Sink
	// Stats, when non-nil, receives "fault.*" registry counters.
	Stats *obs.Registry

	counts Counts
	// pressureWindow is the last sched-pressure window whose activation
	// edge was emitted (-1 before any query).
	pressureWindow int64
	// memWindow is the last mem-pressure window whose activation edge
	// was emitted (-1 before any query).
	memWindow int64
	// src/rng are the reusable draw PRNG: re-seeded from the draw key on
	// every query, so each value still depends only on (seed, kind, pod,
	// time) — but the catch-up scans of NextGap make thousands of draws
	// per wake, and reusing one source keeps them allocation-free.
	src rand.Source
	rng *rand.Rand
}

// New builds an injector for the spec. A nil or empty spec returns a nil
// injector — the fault-free fast path.
func New(spec *Spec, seed uint64) *Injector {
	if spec.Empty() {
		return nil
	}
	src := rand.NewSource(0)
	return &Injector{spec: spec, seed: seed, pressureWindow: -1, memWindow: -1, src: src, rng: rand.New(src)}
}

// Clone returns an independent silent replayer of the same fault
// stream: identical spec and seed — so every (kind, pod, time)-keyed
// draw matches the original's — but its own PRNG scratch (draws re-seed
// per query, so clones running concurrently stay deterministic), fresh
// edge-dedupe state, zero counts and no Events/Stats sinks. Callers
// that shard a run across clones re-derive counts and edge events from
// one authoritative injector; the clones only need the draw values.
// Nil-safe: cloning a nil injector returns nil.
func (in *Injector) Clone() *Injector {
	if in == nil {
		return nil
	}
	return New(in.spec, in.seed)
}

// Seed returns the injector's seed (0 for nil).
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Spec returns the injector's parsed spec (nil for nil).
func (in *Injector) Spec() *Spec {
	if in == nil {
		return nil
	}
	return in.spec
}

// Counts returns the injected-fault counts so far (zero for nil).
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	return in.counts
}

// kindSalt gives each fault kind an independent draw stream.
func kindSalt(k Kind) uint64 {
	switch k {
	case RestartFail:
		return 0x9E37_79B9_7F4A_7C15
	case RestartStuck:
		return 0xBF58_476D_1CE4_E5B9
	case MetricsGap:
		return 0x94D0_49BB_1331_11EB
	case SchedPressure:
		return 0xD6E8_FEB8_6659_FD93
	case MemPressure:
		return 0xC2B2_AE3D_27D4_EB4F
	default:
		return 0xA5A5_A5A5_A5A5_A5A5
	}
}

// key folds the seed, kind salt and pod name into the time-independent
// prefix of a draw key, hoisted out of NextGap's per-minute scans.
func (in *Injector) key(k Kind, pod string) uint64 {
	h := in.seed ^ kindSalt(k)
	for i := 0; i < len(pod); i++ {
		h = (h ^ uint64(pod[i])) * 0x100000001B3 // FNV-1a fold
	}
	return h
}

// drawAt returns a uniform [0,1) value for a key prefix and time. It
// fully re-seeds the injector's PRNG from the mixed key, so the value
// depends only on the key, never on how many draws other layers made
// before this one — the same stream a fresh per-draw PRNG would yield,
// without the per-draw allocation. The injector is queried from the
// single-threaded control loop of one run, so the shared PRNG is safe.
func (in *Injector) drawAt(h uint64, t int64) float64 {
	h ^= uint64(t) * 0xFF51_AFD7_ED55_8CCD
	// splitmix64 finalizer: decorrelate adjacent seconds before the
	// mix becomes a math/rand seed.
	h ^= h >> 33
	h *= 0xC4CE_B9FE_1A85_EC53
	h ^= h >> 33
	in.src.Seed(int64(h))
	return in.rng.Float64()
}

// draw returns a uniform [0,1) value for the (kind, pod, t) key.
func (in *Injector) draw(k Kind, pod string, t int64) float64 {
	return in.drawAt(in.key(k, pod), t)
}

// emit sends one fault event when the sink is enabled.
func (in *Injector) emit(t int64, typ string, fields ...obs.Field) {
	if obs.Enabled(in.Events) {
		in.Events.Emit(obs.Event{T: t, Type: typ, Fields: fields})
	}
}

// RestartFails reports whether the pod's restart attempt completing at
// time now fails. Fires at most once per (pod, now) key; the operator
// queries it exactly once per attempt completion.
func (in *Injector) RestartFails(pod string, now int64) bool {
	if in == nil {
		return false
	}
	f, ok := in.spec.Get(RestartFail)
	if !ok || in.draw(RestartFail, pod, now) >= f.P {
		return false
	}
	in.counts.RestartFails++
	in.Stats.Counter("fault.restart_fails").Inc()
	in.emit(now, "fault.restart-fail", obs.S("pod", pod))
	return true
}

// RestartStuck returns the extra seconds a restart attempt starting at
// time now hangs for (0 when the attempt proceeds normally).
func (in *Injector) RestartStuck(pod string, now int64) int64 {
	if in == nil {
		return 0
	}
	f, ok := in.spec.Get(RestartStuck)
	if !ok || in.draw(RestartStuck, pod, now) >= f.P {
		return 0
	}
	in.counts.RestartStucks++
	in.Stats.Counter("fault.restart_stucks").Inc()
	in.emit(now, "fault.restart-stuck", obs.S("pod", pod), obs.I("dur", f.Dur))
	return f.Dur
}

// DropSample reports whether the pod's usage sample at time now is lost
// before the metrics server records it.
func (in *Injector) DropSample(pod string, now int64) bool {
	if in == nil {
		return false
	}
	f, ok := in.spec.Get(MetricsGap)
	if !ok || in.draw(MetricsGap, pod, now) >= f.P {
		return false
	}
	in.counts.MetricsGaps++
	in.Stats.Counter("fault.metrics_gaps").Inc()
	in.emit(now, "fault.metrics-gap", obs.S("pod", pod))
	return true
}

// NextGap returns the first time in [from, to) at which DropSample would
// drop the pod's sample, or −1 when every draw in the span passes. It is
// a pure probe — no counts, no events, no state — so an engine that
// batches time can pre-schedule the exact gap minutes of a span and keep
// its bulk catch-up path between them, firing DropSample only at the
// minutes that actually gap. The draws are the same (seed, kind, pod,
// time)-keyed values DropSample makes, so probe-then-fire is
// byte-identical to the per-minute loop.
func (in *Injector) NextGap(pod string, from, to int64) int64 {
	if in == nil || from >= to {
		return -1
	}
	f, ok := in.spec.Get(MetricsGap)
	if !ok || f.P <= 0 {
		return -1
	}
	h := in.key(MetricsGap, pod)
	for t := from; t < to; t++ {
		if in.drawAt(h, t) < f.P {
			return t
		}
	}
	return -1
}

// PressureCores returns the per-node capacity (cores) currently stolen
// by transient scheduling pressure. Time is divided into Dur-second
// windows; each window independently activates with probability P. The
// activation edge of each active window emits one "fault.sched-pressure"
// event — at the window boundary, not at the query time, so the stream
// does not depend on when callers poll.
func (in *Injector) PressureCores(now int64) float64 {
	if in == nil {
		return 0
	}
	f, ok := in.spec.Get(SchedPressure)
	if !ok {
		return 0
	}
	window := now / f.Dur
	if in.draw(SchedPressure, "", window) >= f.P {
		return 0
	}
	if window != in.pressureWindow {
		in.pressureWindow = window
		in.counts.PressureWindows++
		in.Stats.Counter("fault.sched_pressure_windows").Inc()
		in.emit(window*f.Dur, "fault.sched-pressure",
			obs.F("cores", f.Cores), obs.I("until", (window+1)*f.Dur))
	}
	return f.Cores
}

// MemPressureGB returns the phantom resident memory (GB) currently
// inflating the pod's RAM usage. Like PressureCores, time is divided
// into Dur-second windows that independently activate with probability
// P, keyed on (seed, kind, pod, window) so each pod's pressure stream is
// independent and query-order-free. The activation edge of each active
// window emits one "fault.mem-pressure" event at the window boundary.
// Only RAM-aware layers call this hook; a CPU-only run never draws.
func (in *Injector) MemPressureGB(pod string, now int64) float64 {
	if in == nil {
		return 0
	}
	f, ok := in.spec.Get(MemPressure)
	if !ok {
		return 0
	}
	window := now / f.Dur
	if in.draw(MemPressure, pod, window) >= f.P {
		return 0
	}
	if window != in.memWindow {
		in.memWindow = window
		in.counts.MemPressureWindows++
		in.Stats.Counter("fault.mem_pressure_windows").Inc()
		in.emit(window*f.Dur, "fault.mem-pressure",
			obs.S("pod", pod), obs.F("gb", f.GB), obs.I("until", (window+1)*f.Dur))
	}
	return f.GB
}

// Has reports whether the injector's spec includes the given fault kind
// (false for nil). Engines that batch time use it to decide which per-
// minute hooks genuinely need a draw per minute (metrics-gap) and which
// can be advanced analytically.
func (in *Injector) Has(k Kind) bool {
	if in == nil {
		return false
	}
	_, ok := in.spec.Get(k)
	return ok
}

// AdvancePressure replays the per-minute scheduling-pressure poll over
// [from, to) with one PressureCores query per pressure window instead of
// one per minute, returning the pressure in effect at time to−1. The
// draw, the window counts and the activation-edge events are identical to
// minute-by-minute polling because PressureCores keys everything on the
// window index (now/Dur) and emits the edge at the window boundary — any
// representative minute inside a window produces the same stream. This is
// the pre-scheduled form of the sched-pressure fault the discrete-event
// fleet engine uses to skip idle spans without perturbing the golden
// event stream. A nil injector or a spec without sched-pressure returns 0
// without drawing, matching the per-minute loop's behaviour.
func (in *Injector) AdvancePressure(from, to int64) float64 {
	if in == nil || to <= from {
		return 0
	}
	f, ok := in.spec.Get(SchedPressure)
	if !ok {
		return 0
	}
	p := 0.0
	for w := from / f.Dur; w <= (to-1)/f.Dur; w++ {
		m := w * f.Dur
		if m < from {
			m = from
		}
		p = in.PressureCores(m)
	}
	return p
}

// Summary renders the chaos section of an end-of-run report ("" for a
// nil injector).
func (in *Injector) Summary() string {
	if in == nil {
		return ""
	}
	return Summarize(in.spec, in.seed, in.counts)
}

// Summarize renders the chaos section of an end-of-run report from a
// spec, seed and fault tally — for callers that only hold a result's
// Counts rather than the injector itself ("" for an empty spec).
func Summarize(spec *Spec, seed uint64, c Counts) string {
	if spec.Empty() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: spec=%s seed=%d\n", spec, seed)
	fmt.Fprintf(&b, "  restart attempts failed:   %d\n", c.RestartFails)
	fmt.Fprintf(&b, "  restart attempts stuck:    %d\n", c.RestartStucks)
	fmt.Fprintf(&b, "  metric samples dropped:    %d\n", c.MetricsGaps)
	fmt.Fprintf(&b, "  scheduling-pressure windows: %d\n", c.PressureWindows)
	// Rendered only when the spec can produce it, so CPU-only chaos
	// summaries stay byte-identical to the pre-vector output.
	if _, ok := spec.Get(MemPressure); ok {
		fmt.Fprintf(&b, "  memory-pressure windows:     %d\n", c.MemPressureWindows)
	}
	return b.String()
}
