package experiments

import (
	"fmt"
	"strings"

	"caasper/internal/baselines"
	"caasper/internal/core"
	"caasper/internal/dbsim"
	"caasper/internal/recommend"
)

// Figure9Result holds the §6.2 "right-sizing without history" live run on
// Database A (Figure 9) and the non-cyclical columns of Table 1.
type Figure9Result struct {
	// Control is the fixed-6-core reference run; CaaSPER the reactive
	// autoscaled run.
	Control, CaaSPER *dbsim.LiveResult
	// CostRatio is CaaSPER's price relative to control (paper: 0.85x).
	CostRatio float64
	// SlackReduction is CaaSPER's total slack reduction (paper: 39.6%).
	SlackReduction float64
	// Resizes is CaaSPER's scaling count (paper: 3, at ~0h, ~3h, ~9h).
	Resizes int
	Report  string
}

// Figure9Table1 reproduces Figure 9 and the non-cyclical columns of
// Table 1: the 12-hour workday (3 h light mixed OLTP, 6 h heavy read-only
// analytics, 3 h light) on a 3-replica Database A in the small cluster,
// control limits fixed at 6 cores, CaaSPER running reactively (no
// history).
func Figure9Table1(seed uint64) (*Figure9Result, error) {
	sched := workloadWorkday(seed)

	const controlCores = 6
	control, err := dbsim.RunLive(sched, baselines.NewControl(controlCores), dbsim.DatabaseAOptions(controlCores, controlCores))
	if err != nil {
		return nil, fmt.Errorf("control: %w", err)
	}

	cfg := core.DefaultConfig(controlCores)
	rec, err := recommend.NewCaaSPERReactive(cfg, 40)
	if err != nil {
		return nil, err
	}
	ca, err := dbsim.RunLive(sched, rec, dbsim.DatabaseAOptions(controlCores, controlCores))
	if err != nil {
		return nil, fmt.Errorf("caasper: %w", err)
	}

	res := &Figure9Result{
		Control:        control,
		CaaSPER:        ca,
		CostRatio:      ca.CostRatioVs(control),
		SlackReduction: ca.SlackReductionVs(control),
		Resizes:        ca.NumScalings,
	}

	tb := NewTable("Figure 9 / Table 1 (non-cyclical, 12h workday on Database A)",
		"run", "completed txns", "avg lat ms", "med lat ms", "interrupted", "resizes", "price")
	tb.AddRow("control (no resize)", control.DB.CompletedTxns, control.DB.AvgLatencyMS,
		control.DB.MedLatencyMS, control.DB.InterruptedTxns, control.NumScalings, "1.00x")
	tb.AddRow("caasper (reactive)", ca.DB.CompletedTxns, ca.DB.AvgLatencyMS,
		ca.DB.MedLatencyMS, ca.DB.InterruptedTxns, ca.NumScalings, ratio(res.CostRatio))
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "slack reduction vs control: %s (paper: 39.6%%)\n", pct(res.SlackReduction))
	fmt.Fprintf(&b, "paper: price 0.85x, ~3 resizings, latency within margin of error, 1 txn dropped+retried per resize\n")
	res.Report = b.String()
	return res, nil
}
