package stats

import (
	"testing"
)

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(nil, 1, 10, NewRNG(1)); err != ErrEmpty {
		t.Errorf("empty points err = %v", err)
	}
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(pts, 0, 10, NewRNG(1)); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := KMeans(pts, 3, 10, NewRNG(1)); err == nil {
		t.Error("k>n should error")
	}
	bad := [][]float64{{1, 2}, {1}}
	if _, err := KMeans(bad, 1, 10, NewRNG(1)); err == nil {
		t.Error("inconsistent dims should error")
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	rng := NewRNG(5)
	var pts [][]float64
	// Two well-separated blobs around (0,0) and (100,100).
	for i := 0; i < 50; i++ {
		pts = append(pts, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	for i := 0; i < 50; i++ {
		pts = append(pts, []float64{100 + rng.NormFloat64(), 100 + rng.NormFloat64()})
	}
	res, err := KMeans(pts, 2, 100, NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	// All points in the first blob share a cluster distinct from the second.
	first := res.Assignments[0]
	for i := 1; i < 50; i++ {
		if res.Assignments[i] != first {
			t.Fatalf("blob 1 split: point %d in cluster %d", i, res.Assignments[i])
		}
	}
	second := res.Assignments[50]
	if second == first {
		t.Fatal("blobs merged into one cluster")
	}
	for i := 51; i < 100; i++ {
		if res.Assignments[i] != second {
			t.Fatalf("blob 2 split: point %d in cluster %d", i, res.Assignments[i])
		}
	}
}

func TestKMeansK1(t *testing.T) {
	pts := [][]float64{{1, 0}, {3, 0}, {5, 0}}
	res, err := KMeans(pts, 1, 10, NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Centroids[0][0], 3, 1e-9) {
		t.Errorf("centroid = %v, want x=3", res.Centroids[0])
	}
	for _, a := range res.Assignments {
		if a != 0 {
			t.Error("all points should be in cluster 0")
		}
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	pts := [][]float64{{0}, {10}, {20}}
	res, err := KMeans(pts, 3, 50, NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Errorf("k=n should give zero inertia, got %v", res.Inertia)
	}
	seen := map[int]bool{}
	for _, a := range res.Assignments {
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Errorf("expected 3 distinct clusters, got %d", len(seen))
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	pts := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	res, err := KMeans(pts, 2, 20, NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Errorf("identical points inertia = %v", res.Inertia)
	}
}

func TestKMeansDeterminism(t *testing.T) {
	rng := NewRNG(11)
	var pts [][]float64
	for i := 0; i < 40; i++ {
		pts = append(pts, []float64{rng.Float64() * 10, rng.Float64() * 10})
	}
	r1, err := KMeans(pts, 4, 100, NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KMeans(pts, 4, 100, NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Assignments {
		if r1.Assignments[i] != r2.Assignments[i] {
			t.Fatal("same seed should give identical assignments")
		}
	}
	if r1.Inertia != r2.Inertia {
		t.Error("same seed should give identical inertia")
	}
}

func TestKMeansRepresentatives(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}, {100}, {101}, {102}}
	res, err := KMeans(pts, 2, 100, NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	reps := res.Representatives(pts)
	if len(reps) != 2 {
		t.Fatalf("reps = %v", reps)
	}
	// Each representative should be the middle point of its blob.
	for _, r := range reps {
		v := pts[r][0]
		if v != 1 && v != 101 {
			t.Errorf("representative %v not at a blob centre", v)
		}
	}
}

func TestRNGDeterminismAndRanges(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %v", n)
		}
		if v := r.Range(5, 7); v < 5 || v >= 7 {
			t.Fatalf("Range out of range: %v", v)
		}
	}
	// Zero seed must still work.
	z := NewRNG(0)
	if z.Uint64() == 0 && z.Uint64() == 0 {
		t.Error("zero-seeded RNG looks degenerate")
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(1234)
	n := 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Errorf("normal mean = %v, want ≈0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("normal variance = %v, want ≈1", variance)
	}
}

func TestRNGLogUniform(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.LogUniform(-3, 3) // e^-3 .. e^3
		if v < 0.0497 || v > 20.1 {
			t.Fatalf("LogUniform out of range: %v", v)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(4)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(8)
	c1 := r.Fork()
	c2 := r.Fork()
	if c1.Uint64() == c2.Uint64() {
		t.Error("forked streams should differ")
	}
}
