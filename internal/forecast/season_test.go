package forecast

import (
	"math"
	"testing"

	"caasper/internal/stats"
)

func TestAutocorrelation(t *testing.T) {
	// Perfect period-4 series: ACF(4) ≈ 1, ACF(2) strongly negative.
	series := make([]float64, 200)
	for i := range series {
		series[i] = math.Sin(2 * math.Pi * float64(i) / 4)
	}
	acf, err := autocorrelation(series, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acf[0]-1) > 1e-9 {
		t.Errorf("ACF(0) = %v", acf[0])
	}
	if acf[4] < 0.9 {
		t.Errorf("ACF(4) = %v, want ≈1", acf[4])
	}
	if acf[2] > -0.9 {
		t.Errorf("ACF(2) = %v, want ≈-1", acf[2])
	}
	// Constant series: defined, not NaN.
	flat, err := autocorrelation([]float64{5, 5, 5, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range flat[1:] {
		if v != 0 {
			t.Errorf("constant ACF = %v", flat)
		}
	}
	if _, err := autocorrelation([]float64{1}, 2); err != ErrShortHistory {
		t.Errorf("short err = %v", err)
	}
}

func TestDetectSeasonValidation(t *testing.T) {
	series := make([]float64, 100)
	if _, err := DetectSeason(series, 20, 10, 0.3); err == nil {
		t.Error("maxLag ≤ minLag should error")
	}
	if _, err := DetectSeason(series[:10], 10, 40, 0.3); err != ErrShortHistory {
		t.Errorf("short history err = %v", err)
	}
	if _, err := DetectSeason(series, 10, 40, 0); err == nil {
		t.Error("bad minACF should error")
	}
	if _, err := DetectSeason(series, 10, 40, 1.5); err == nil {
		t.Error("bad minACF should error")
	}
}

func TestDetectSeasonFindsDailyCycle(t *testing.T) {
	// A "daily" cycle of 144 samples (compressed day) plus noise.
	rng := stats.NewRNG(5)
	const day = 144
	series := make([]float64, 6*day)
	for i := range series {
		series[i] = 4 + 2*math.Sin(2*math.Pi*float64(i)/day) + rng.NormFloat64()*0.3
	}
	season, err := DetectSeason(series, 20, 2*day, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if season < day-3 || season > day+3 {
		t.Errorf("detected season %d, want ≈%d", season, day)
	}
}

func TestDetectSeasonRejectsNoise(t *testing.T) {
	rng := stats.NewRNG(9)
	series := make([]float64, 800)
	for i := range series {
		series[i] = rng.Float64() * 10
	}
	if _, err := DetectSeason(series, 10, 300, 0.3); err != ErrNoSeason {
		t.Errorf("noise detected a season: %v", err)
	}
}

func TestAutoSeasonalNaive(t *testing.T) {
	const period = 96
	series := make([]float64, 5*period)
	for i := range series {
		series[i] = 3
		if m := i % period; m >= 40 && m < 60 {
			series[i] = 9
		}
	}
	f := &AutoSeasonalNaive{MinLag: 20, MaxLag: 2 * period}
	pred, err := f.Forecast(series, period)
	if err != nil {
		t.Fatal(err)
	}
	if f.LastDetected < period-3 || f.LastDetected > period+3 {
		t.Errorf("detected %d, want ≈%d", f.LastDetected, period)
	}
	// The forecast reproduces the spike at the right phase.
	var sawSpike bool
	for h := 40; h < 60 && h < len(pred); h++ {
		if pred[h] > 8 {
			sawSpike = true
		}
	}
	if !sawSpike {
		t.Error("auto-seasonal forecast missed the recurring spike")
	}

	// Non-seasonal input degrades to last-value.
	rng := stats.NewRNG(2)
	noise := make([]float64, 600)
	for i := range noise {
		noise[i] = rng.Float64()
	}
	f2 := &AutoSeasonalNaive{MinLag: 10, MaxLag: 200}
	pred, err = f2.Forecast(noise, 5)
	if err != nil {
		t.Fatal(err)
	}
	if f2.LastDetected != 0 {
		t.Errorf("noise detection = %d, want 0", f2.LastDetected)
	}
	for _, v := range pred {
		if v != noise[len(noise)-1] {
			t.Errorf("fallback should be last-value, got %v", v)
		}
	}
}

func TestAutoSeasonalNaiveInProactiveLoop(t *testing.T) {
	// End-to-end sanity: the auto forecaster slots into the pluggable
	// Forecaster interface with no special handling.
	var _ Forecaster = (*AutoSeasonalNaive)(nil)
}
