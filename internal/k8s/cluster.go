package k8s

import (
	"fmt"

	"caasper/internal/errs"
)

// Node is a cluster node (VM) with allocatable capacity.
type Node struct {
	// Name identifies the node.
	Name string
	// Allocatable is the node's schedulable capacity.
	Allocatable Resources
	// allocated is the sum of requests of pods bound to the node.
	allocated Resources
	// pods maps pod name → bound pod.
	pods map[string]*Pod
}

// NewNode builds a node.
func NewNode(name string, cpuCores int, memGiB float64) *Node {
	return &Node{
		Name:        name,
		Allocatable: Resources{CPUCores: float64(cpuCores), MemoryGiB: memGiB},
		pods:        make(map[string]*Pod),
	}
}

// Free returns the unallocated capacity.
func (n *Node) Free() Resources { return n.Allocatable.Sub(n.allocated) }

// PodCount returns the number of pods bound to the node.
func (n *Node) PodCount() int { return len(n.pods) }

// Cluster is a set of nodes plus the scheduler.
type Cluster struct {
	nodes []*Node
	// pressure is transient per-node capacity (cores) invisible to the
	// scheduler's accounting but unavailable for placement — opaque
	// co-tenant churn injected by the fault layer (faults.SchedPressure).
	// It only affects Schedule: pods already bound keep their nodes, as
	// on a real cluster where pressure blocks new placements but does
	// not evict.
	pressure float64
}

// SetPressure sets the transient per-node capacity pressure in cores
// (0 clears it). The operator refreshes it each tick from its fault
// injector; with no faults it stays 0 and scheduling is unchanged.
func (c *Cluster) SetPressure(cores float64) { c.pressure = cores }

// Pressure returns the current transient per-node pressure in cores.
func (c *Cluster) Pressure() float64 { return c.pressure }

// NewCluster builds a cluster from nodes. The paper's "small cluster" is
// 6 VMs × 8 CPUs/32 GiB; the "large cluster" 6 VMs × 16 CPUs/56 GiB.
func NewCluster(nodes ...*Node) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("k8s: cluster needs at least one node: %w", errs.ErrInvalidConfig)
	}
	seen := map[string]bool{}
	for _, n := range nodes {
		if seen[n.Name] {
			return nil, fmt.Errorf("k8s: duplicate node %q", n.Name)
		}
		seen[n.Name] = true
	}
	return &Cluster{nodes: nodes}, nil
}

// SmallCluster returns the paper's small test cluster: 6 VMs, each with
// 8 CPUs and 32 GiB.
func SmallCluster() *Cluster {
	var nodes []*Node
	for i := 0; i < 6; i++ {
		nodes = append(nodes, NewNode(fmt.Sprintf("node-%d", i), 8, 32))
	}
	c, err := NewCluster(nodes...)
	if err != nil {
		panic(err) // static configuration cannot fail
	}
	return c
}

// LargeCluster returns the paper's large test cluster: 6 VMs, each with
// 16 CPUs and 56 GiB.
func LargeCluster() *Cluster {
	var nodes []*Node
	for i := 0; i < 6; i++ {
		nodes = append(nodes, NewNode(fmt.Sprintf("node-%d", i), 16, 56))
	}
	c, err := NewCluster(nodes...)
	if err != nil {
		panic(err)
	}
	return c
}

// Nodes returns the cluster's nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// NodeByName returns the named node, or nil when no such node exists. The
// fleet arbiter uses it to check scale-up feasibility per hosting node
// before granting simultaneous resize requests.
func (c *Cluster) NodeByName(name string) *Node {
	for _, n := range c.nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Schedule binds the pod to a node with enough free capacity for its
// requests, using a least-allocated (spread) policy: among fitting nodes,
// the one with the most free CPU wins, which is how replicas end up
// spread for HA. It returns an error when no node fits.
func (c *Cluster) Schedule(p *Pod) error {
	if p.Phase == PhaseRunning {
		return fmt.Errorf("k8s: pod %s already running", p.Name)
	}
	// Single allocation-free scan for the winning candidate. Candidacy is
	// judged on pressure-reduced free CPU; the spread ranking (most raw
	// free CPU, ties broken by name) is a total order over distinct node
	// names, so the scan picks the same node the old sort-and-take-first
	// did without building a candidate slice per placement.
	var best *Node
	var bestFree float64
	for _, n := range c.nodes {
		free := n.Free()
		rawCPU := free.CPUCores
		free.CPUCores -= c.pressure // transient fault-injected pressure
		if !p.Spec.Requests.Fits(free) {
			continue
		}
		if best == nil || rawCPU > bestFree || (rawCPU == bestFree && n.Name < best.Name) {
			best, bestFree = n, rawCPU
		}
	}
	if best == nil {
		return fmt.Errorf("k8s: no node fits pod %s (requests %.0fc/%.0fGiB, pressure %.0fc)",
			p.Name, p.Spec.Requests.CPUCores, p.Spec.Requests.MemoryGiB, c.pressure)
	}
	n := best
	n.pods[p.Name] = p
	n.allocated = n.allocated.Add(p.Spec.Requests)
	p.NodeName = n.Name
	return nil
}

// Evict unbinds the pod from its node (the deallocation step of a rolling
// update with restart). It is a no-op for unbound pods.
func (c *Cluster) Evict(p *Pod) {
	if p.NodeName == "" {
		return
	}
	for _, n := range c.nodes {
		if n.Name == p.NodeName {
			if _, ok := n.pods[p.Name]; ok {
				delete(n.pods, p.Name)
				n.allocated = n.allocated.Sub(p.Spec.Requests)
			}
			break
		}
	}
	p.NodeName = ""
}

// AddCoTenants schedules `count` opaque co-tenant pods of the given size
// onto the cluster. The paper's §6.2 customer-trace experiment ran on "the
// small K8s cluster which had other customer-required services running,
// bounding the limits to a max of 6 cores" — co-tenants are how that bound
// arises naturally from capacity instead of from a configured clamp.
func AddCoTenants(c *Cluster, count, cpuCores int, memGiB float64) error {
	for i := 0; i < count; i++ {
		p := &Pod{
			Name:  fmt.Sprintf("cotenant-%d", i),
			Phase: PhasePending,
			Spec:  NewGuaranteedSpec(cpuCores, memGiB),
		}
		if err := c.Schedule(p); err != nil {
			return fmt.Errorf("k8s: placing co-tenant %d: %w", i, err)
		}
		p.Phase = PhaseRunning
	}
	return nil
}

// ResizeInPlace updates a bound pod's resource spec without rescheduling
// it — the K8s in-place pod resize feature. A spec increase must fit in
// the node's free capacity; otherwise the resize is rejected, which is
// exactly the real feature's "Infeasible" outcome.
func (c *Cluster) ResizeInPlace(p *Pod, spec ContainerSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if p.NodeName == "" {
		p.Spec = spec
		return nil
	}
	for _, n := range c.nodes {
		if n.Name != p.NodeName {
			continue
		}
		delta := spec.Requests.Sub(p.Spec.Requests)
		if delta.CPUCores > 0 || delta.MemoryGiB > 0 {
			if !delta.Fits(n.Free()) {
				return fmt.Errorf("k8s: in-place resize of %s infeasible on %s (need %+.0fc, free %.0fc)",
					p.Name, n.Name, delta.CPUCores, n.Free().CPUCores)
			}
		}
		n.allocated = n.allocated.Add(delta)
		p.Spec = spec
		return nil
	}
	return fmt.Errorf("k8s: pod %s bound to unknown node %q", p.Name, p.NodeName)
}

// TotalAllocatable sums node capacity.
func (c *Cluster) TotalAllocatable() Resources {
	var total Resources
	for _, n := range c.nodes {
		total = total.Add(n.Allocatable)
	}
	return total
}

// TotalAllocated sums bound requests.
func (c *Cluster) TotalAllocated() Resources {
	var total Resources
	for _, n := range c.nodes {
		total = total.Add(n.allocated)
	}
	return total
}
