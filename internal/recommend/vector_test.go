package recommend

import (
	"errors"
	"testing"

	"caasper/internal/core"
	"caasper/internal/errs"
)

func TestMemoryPolicyDualThreshold(t *testing.T) {
	p := DefaultMemoryPolicy()
	// Small allocation: the absolute floor (0.5 GB) dominates.
	if thr := p.Threshold(2); thr != 0.5 {
		t.Fatalf("Threshold(2) = %v, want 0.5 (absolute floor wins)", thr)
	}
	// Large allocation: the percent floor (20%) dominates — higher wins.
	if thr := p.Threshold(10); thr != 2.0 {
		t.Fatalf("Threshold(10) = %v, want 2.0 (percent floor wins)", thr)
	}

	// 4 GB granted, 3.8 GB peak used → free 0.2 < thr 0.8 → grow.
	if got := p.Target(4, 3.8, 1, 16); got <= 4 {
		t.Fatalf("Target(4, 3.8) = %d, want > 4", got)
	}
	// Growth is step-capped.
	if got := p.Target(4, 15.5, 1, 32); got != 4+p.MaxStepUpGB {
		t.Fatalf("Target(4, 15.5) = %d, want step-capped %d", got, 4+p.MaxStepUpGB)
	}
	// 16 GB granted, 2 GB used → free 14 > 2×3.2 → shrink, step-capped.
	if got := p.Target(16, 2, 1, 16); got != 16-p.MaxStepDownGB {
		t.Fatalf("Target(16, 2) = %d, want %d", got, 16-p.MaxStepDownGB)
	}
	// Hysteresis: free just above threshold holds.
	if got := p.Target(8, 6, 1, 16); got != 8 {
		t.Fatalf("Target(8, 6) = %d, want hold at 8", got)
	}
	// Never exceeds max.
	if got := p.Target(16, 15.9, 1, 16); got != 16 {
		t.Fatalf("Target at ceiling = %d, want 16", got)
	}
}

func TestDiskPolicyGrowOnly(t *testing.T) {
	p := DefaultDiskPolicy()
	// 20 GB allocated, 18 used → need ceil(18/0.8)=23 → round to 25.
	if got := p.Target(20, 18, 100); got != 25 {
		t.Fatalf("Target(20, 18) = %d, want 25", got)
	}
	// Usage fell: never shrink.
	if got := p.Target(50, 5, 100); got != 50 {
		t.Fatalf("grow-only violated: Target(50, 5) = %d, want 50", got)
	}
	// Clamped to max.
	if got := p.Target(90, 99, 100); got != 100 {
		t.Fatalf("Target(90, 99) = %d, want 100", got)
	}
}

func vectorUnderTest(t *testing.T, lim core.Limits) *Vector {
	t.Helper()
	cpu, err := NewByName("caasper", Settings{MaxCores: lim.Max.CPUCores})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVector(cpu, lim, MemoryPolicy{}, DiskPolicy{}, 60)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVectorValidation(t *testing.T) {
	cpu, err := NewByName("control", Settings{MaxCores: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVector(nil, core.Limits{Max: core.Resources{RAMGB: 8}}, MemoryPolicy{}, DiskPolicy{}, 60); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("nil cpu: want ErrInvalidConfig, got %v", err)
	}
	if _, err := NewVector(cpu, core.Limits{Max: core.Resources{CPUCores: 8}}, MemoryPolicy{}, DiskPolicy{}, 60); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("cpu-only limits: want ErrInvalidConfig, got %v", err)
	}
	if _, err := NewVector(cpu, core.Limits{Max: core.Resources{RAMGB: 8}}, MemoryPolicy{}, DiskPolicy{}, 0); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("zero window: want ErrInvalidConfig, got %v", err)
	}
}

func TestVectorRAMAndDiskDimensions(t *testing.T) {
	lim := core.Limits{
		Min: core.Resources{CPUCores: 1, RAMGB: 2, DiskGB: 20},
		Max: core.Resources{CPUCores: 8, RAMGB: 16, DiskGB: 100},
	}
	v := vectorUnderTest(t, lim)
	cur := core.Resources{CPUCores: 2, RAMGB: 4, DiskGB: 20}
	for m := 0; m < 60; m++ {
		v.ObserveVector(m, 1.0, 3.9, 22, 1)
	}
	d := v.RecommendVector(cur)
	if d.Target.RAMGB <= cur.RAMGB {
		t.Fatalf("RAM under pressure must grow: %+v", d.Target)
	}
	if d.Target.DiskGB <= cur.DiskGB {
		t.Fatalf("disk past high-water must grow: %+v", d.Target)
	}
	if d.Current != cur {
		t.Fatalf("Current = %+v, want %+v", d.Current, cur)
	}
	if d.TargetCores != d.Target.CPUCores || d.CurrentCores != cur.CPUCores {
		t.Fatalf("deprecated CPU aliases out of sync: %+v", d)
	}

	// Disk never shrinks even after usage drops.
	grown := d.Target
	for m := 60; m < 120; m++ {
		v.ObserveVector(m, 1.0, 3.0, 1, 1)
	}
	d2 := v.RecommendVector(grown)
	if d2.Target.DiskGB < grown.DiskGB {
		t.Fatalf("disk shrank %d → %d", grown.DiskGB, d2.Target.DiskGB)
	}
}

func TestVectorHorizontalOverflowVerticalFirst(t *testing.T) {
	lim := core.Limits{
		Min: core.Resources{CPUCores: 1, RAMGB: 2, Replicas: 1},
		Max: core.Resources{CPUCores: 4, RAMGB: 16, Replicas: 3},
	}
	v := vectorUnderTest(t, lim)

	// Demand hot against the per-pod ceiling: CPU pins at 4, then a
	// replica is added — vertical first, horizontal overflow second.
	cur := core.Resources{CPUCores: 4, RAMGB: 4, Replicas: 1}
	for m := 0; m < 60; m++ {
		v.ObserveVector(m, 3.95, 2.0, 0, 1)
	}
	d := v.RecommendVector(cur)
	if d.Target.CPUCores != 4 {
		t.Fatalf("CPU should stay pinned at the ceiling: %+v", d.Target)
	}
	if d.Target.Replicas != 2 {
		t.Fatalf("overflow should add a replica: %+v", d.Target)
	}

	// Demand collapses: CPU un-pins and the replica drains away.
	cur = d.Target
	for m := 60; m < 120; m++ {
		v.ObserveVector(m, 0.5, 2.0, 0, 2)
	}
	d = v.RecommendVector(cur)
	if d.Target.Replicas != 1 {
		t.Fatalf("idle set should scale back in: %+v", d.Target)
	}
	if got := d.Target.Replicas; got < lim.Min.Replicas {
		t.Fatalf("replicas below floor: %d", got)
	}
}

func TestVectorRecommenderCompat(t *testing.T) {
	lim := core.Limits{Min: core.Resources{RAMGB: 1}, Max: core.Resources{CPUCores: 8, RAMGB: 8}}
	v := vectorUnderTest(t, lim)
	var r Recommender = v // compile-time + runtime interface check
	for m := 0; m < 60; m++ {
		r.Observe(m, 1.0)
	}
	if got := r.Recommend(4); got < 1 || got > 8 {
		t.Fatalf("Recommend out of range: %d", got)
	}
	r.Reset()
	if v.ram.Len() != 0 || v.diskHigh != 0 {
		t.Fatal("Reset must clear every dimension")
	}
}
