package core

import (
	"fmt"
	"testing"

	"caasper/internal/stats"
)

// randomWindow mixes regimes so the decisions below cover every branch:
// pinned-at-cap, idle, in-band and flat-tail windows all occur.
func randomWindow(rng *stats.RNG, trial int) []float64 {
	n := 5 + trial%77
	out := make([]float64, n)
	for i := range out {
		switch trial % 5 {
		case 0:
			out[i] = rng.Range(5.5, 6) // pinned near a 6-core cap
		case 1:
			out[i] = rng.Range(0, 0.4) // idle
		case 2:
			out[i] = rng.Range(2, 5) // mid-band
		case 3:
			out[i] = 1.25 // constant (flat tail candidate)
		default:
			// Mostly idle with rare excursions past a 10-core allocation:
			// small nonzero slope at 10 → the gradual scale-down arm.
			out[i] = 2 + rng.NormFloat64()*0.2
			if i%31 == 0 {
				out[i] = 10.5
			}
		}
	}
	return out
}

// windowCur pairs randomWindow's regimes with an allocation that makes
// the intended branch reachable.
func windowCur(trial int) int {
	if trial%5 == 4 {
		return 10
	}
	return 1 + trial%12
}

// TestExplanationMatchesFmt pins the hand-rolled explanation builder to
// the fmt.Sprintf formats it replaced: for every branch the bytes must be
// exactly what fmt would have produced.
func TestExplanationMatchesFmt(t *testing.T) {
	r := mustRecommender(t, 16)
	cfg := r.Config()
	rng := stats.NewRNG(11)
	seen := map[Branch]int{}
	for trial := 0; trial < 400; trial++ {
		usage := randomWindow(rng, trial)
		cur := windowCur(trial)
		d, err := r.Decide(cur, usage)
		if err != nil {
			t.Fatal(err)
		}
		seen[d.Branch]++

		clean := Preprocess(usage)
		peak := stats.Max(clean)
		xc := d.CurrentCores
		capf := float64(xc)
		var want string
		switch {
		case d.Branch == BranchScaleUp:
			want = fmt.Sprintf(
				"scale-up: slope %.2f (threshold %.2f), P%.0f usage %.2f of %d cores (buffer threshold %.2f); SF %.2f → +%d cores",
				d.Slope, cfg.SlopeHigh, cfg.QuantileP*100, d.Quantile, xc, (1-cfg.SlackHigh)*capf, d.RawSF, d.TargetCores-xc)
		case d.Branch == BranchWalkDown:
			want = fmt.Sprintf(
				"walk-down: flat PvP tail at %d cores (peak usage %.2f); cheapest SKU meeting %.0f%% performance is %d cores",
				xc, peak, cfg.WalkDownPerfTarget*100, d.TargetCores)
		case d.Branch == BranchScaleDown:
			want = fmt.Sprintf(
				"scale-down: slope %.2f ≤ %.2f or P%.0f usage %.2f ≤ %.2f (idle threshold); SF %.2f → -%d cores",
				d.Slope, cfg.SlopeLow, cfg.QuantileP*100, d.Quantile, cfg.SlackLow*capf, d.RawSF, xc-d.TargetCores)
		case d.Slope <= cfg.SlopeLow || d.Quantile <= cfg.SlackLow*capf:
			// A down-trigger that held: flat-tail or quantile-forbids arm.
			if d.Slope == 0 && d.Explanation[:10] == "hold: flat" {
				want = fmt.Sprintf(
					"hold: flat PvP tail at %d cores but no cheaper SKU clears the buffered peak %.2f", xc, peak)
			} else {
				want = fmt.Sprintf(
					"hold: down-trigger fired but buffered quantile %.2f forbids shrinking below %d cores", d.Quantile, xc)
			}
		default:
			want = fmt.Sprintf(
				"hold: slope %.2f within (%.2f, %.2f) and P%.0f usage %.2f within slack bands of %d cores",
				d.Slope, cfg.SlopeLow, cfg.SlopeHigh, cfg.QuantileP*100, d.Quantile, xc)
		}
		if d.Explanation != want {
			t.Fatalf("trial %d branch %s:\n got  %q\n want %q", trial, d.Branch, d.Explanation, want)
		}
	}
	for _, br := range []Branch{BranchScaleUp, BranchScaleDown, BranchWalkDown, BranchHold} {
		if seen[br] == 0 {
			t.Errorf("branch %s never exercised", br)
		}
	}
}

// TestDecideScratchMemoEquivalence: a long-lived Scratch (memo armed)
// must return decisions bit-identical to fresh memoless evaluations,
// including after repeated identical windows.
func TestDecideScratchMemoEquivalence(t *testing.T) {
	r := mustRecommender(t, 16)
	rng := stats.NewRNG(23)
	var sc Scratch
	var last []float64
	lastCur := 0
	for trial := 0; trial < 300; trial++ {
		var usage []float64
		var cur int
		if trial%3 == 0 && last != nil {
			usage, cur = last, lastCur // force memo hits
		} else {
			usage, cur = randomWindow(rng, trial), windowCur(trial)
		}
		last, lastCur = usage, cur
		got, err := r.DecideScratch(&sc, cur, usage)
		if err != nil {
			t.Fatal(err)
		}
		// DecideScratch defers the explanation to the scratch buffer;
		// materialise it the way Explainer surfaces do before comparing.
		got.Explanation = sc.Explanation()
		want, err := r.Decide(cur, usage)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: scratch %+v != fresh %+v", trial, got, want)
		}
	}
	if sc.MemoHits == 0 {
		t.Error("memo never hit — equivalence test lost its teeth")
	}
}

// TestDecideScratchMemoHitZeroAllocs: with telemetry disabled, a
// memo-answered decision must not allocate at all.
func TestDecideScratchMemoHitZeroAllocs(t *testing.T) {
	r := mustRecommender(t, 16)
	usage := cappedUsage(6, 3, 40, 9)
	var sc Scratch
	if _, err := r.DecideScratch(&sc, 3, usage); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := r.DecideScratch(&sc, 3, usage); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("memo-hit allocs = %v, want 0", allocs)
	}
}

// TestDecideScratchMissZeroAllocs pins the full-evaluation path at zero
// allocations once scratch buffers are warm: the explanation is built in
// the reusable byte buffer and only materialised by Scratch.Explanation.
func TestDecideScratchMissZeroAllocs(t *testing.T) {
	r := mustRecommender(t, 16)
	a := cappedUsage(6, 3, 40, 9)
	b := cappedUsage(6, 3, 40, 10)
	var sc Scratch
	if _, err := r.DecideScratch(&sc, 3, a); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DecideScratch(&sc, 3, b); err != nil {
		t.Fatal(err)
	}
	flip := false
	allocs := testing.AllocsPerRun(500, func() {
		u := a
		if flip {
			u = b
		}
		flip = !flip
		if _, err := r.DecideScratch(&sc, 3, u); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("memo-miss allocs = %v, want 0", allocs)
	}
}
