package main

import "testing"

func TestBuildSchedule(t *testing.T) {
	for _, name := range []string{"workday", "cyclical", "customer"} {
		sched, initial, maxC, err := buildSchedule(name, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := sched.Validate(); err != nil {
			t.Errorf("%s: invalid schedule: %v", name, err)
		}
		if initial < 1 || maxC < initial {
			t.Errorf("%s: bounds %d/%d", name, initial, maxC)
		}
	}
	if _, _, _, err := buildSchedule("bogus", 1); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestBuildRecommenderLive(t *testing.T) {
	for _, name := range []string{"caasper", "caasper-proactive", "vpa", "openshift", "autopilot", "control"} {
		rec, err := buildRecommender(name, 8, 6)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if rec.Name() == "" {
			t.Errorf("%s: nameless recommender", name)
		}
	}
	if _, err := buildRecommender("bogus", 8, 6); err == nil {
		t.Error("unknown recommender should error")
	}
}
