package stats

import (
	"math"
	"strings"
	"testing"
)

func mustHistogram(t *testing.T) *DecayingHistogram {
	t.Helper()
	h, err := NewDecayingHistogram(DecayingHistogramOptions{
		FirstBucket: 0.01,
		Growth:      1.05,
		MaxValue:    100,
		HalfLife:    24 * 60, // 24h in minutes
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewDecayingHistogramValidation(t *testing.T) {
	cases := []DecayingHistogramOptions{
		{FirstBucket: 0, Growth: 1.05, MaxValue: 10, HalfLife: 1},
		{FirstBucket: 0.01, Growth: 1, MaxValue: 10, HalfLife: 1},
		{FirstBucket: 0.01, Growth: 1.05, MaxValue: 0.005, HalfLife: 1},
		{FirstBucket: 0.01, Growth: 1.05, MaxValue: 10, HalfLife: 0},
	}
	for i, c := range cases {
		if _, err := NewDecayingHistogram(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := mustHistogram(t)
	if !h.Empty() {
		t.Error("new histogram should be empty")
	}
	if got := h.Percentile(0.9); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	// Invalid samples are ignored.
	h.Add(-1, 1, 0)
	h.Add(math.NaN(), 1, 0)
	h.Add(1, 0, 0)
	if !h.Empty() {
		t.Error("invalid samples should be ignored")
	}
}

func TestHistogramPercentileApproximation(t *testing.T) {
	h := mustHistogram(t)
	// 100 samples uniform over (0, 10]: P90 should be near 9.
	for i := 1; i <= 100; i++ {
		h.Add(float64(i)/10, 1, 0)
	}
	p90 := h.Percentile(0.9)
	if p90 < 8.5 || p90 > 9.8 {
		t.Errorf("P90 = %v, want ≈9 within bucket resolution", p90)
	}
	p50 := h.Percentile(0.5)
	if p50 < 4.5 || p50 > 5.6 {
		t.Errorf("P50 = %v, want ≈5", p50)
	}
	if p50 > p90 {
		t.Error("P50 should not exceed P90")
	}
}

func TestHistogramDecayForgetsOldPeaks(t *testing.T) {
	h := mustHistogram(t)
	// A burst of high samples at t=0...
	for i := 0; i < 60; i++ {
		h.Add(8, 1, float64(i))
	}
	highP90 := h.Percentile(0.9)
	if highP90 < 7 {
		t.Fatalf("P90 after burst = %v, want ≥7", highP90)
	}
	// ...then a long stretch of low usage. After several half-lives the
	// old peak's weight is negligible.
	for i := 0; i < 10*24*60; i++ {
		h.Add(1, 1, float64(60+i))
	}
	lowP90 := h.Percentile(0.9)
	if lowP90 > 2 {
		t.Errorf("P90 after decay = %v, want ≤2 (old peak forgotten)", lowP90)
	}
}

func TestHistogramNoDecayWithinShortWindow(t *testing.T) {
	// The VPA pathology from the paper: with a long half-life, P90 stays
	// high long after the load drops, blocking scale-down.
	h := mustHistogram(t)
	for i := 0; i < 8*60; i++ { // 8 hours at 7 cores
		h.Add(7, 1, float64(i))
	}
	for i := 0; i < 4*60; i++ { // 4 hours at 2 cores
		h.Add(2, 1, float64(8*60+i))
	}
	p90 := h.Percentile(0.9)
	if p90 < 6 {
		t.Errorf("P90 = %v; with 24h half-life the old peak should dominate", p90)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := mustHistogram(t)
	h.Add(1e6, 1, 0) // above MaxValue
	p := h.Percentile(1)
	if p != 100 {
		t.Errorf("overflow percentile = %v, want MaxValue 100", p)
	}
}

func TestHistogramRebasing(t *testing.T) {
	h := mustHistogram(t)
	// Spread samples across a huge time range to force weight re-basing.
	for i := 0; i < 200; i++ {
		h.Add(3, 1, float64(i)*10000)
	}
	if h.Empty() {
		t.Fatal("histogram should not be empty")
	}
	p := h.Percentile(0.9)
	if p < 2.5 || p > 3.5 {
		t.Errorf("P90 after rebasing = %v, want ≈3", p)
	}
	if math.IsInf(h.TotalWeight(), 0) || math.IsNaN(h.TotalWeight()) {
		t.Errorf("total weight overflowed: %v", h.TotalWeight())
	}
}

func TestHistogramString(t *testing.T) {
	h := mustHistogram(t)
	h.Add(2, 1, 0)
	if s := h.String(); !strings.Contains(s, "DecayingHistogram") {
		t.Errorf("String = %q", s)
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	h := mustHistogram(t)
	rng := NewRNG(3)
	for i := 0; i < 500; i++ {
		h.Add(rng.Float64()*50, 1, float64(i))
	}
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.01 {
		p := h.Percentile(q)
		if p < prev {
			t.Fatalf("percentile not monotone at q=%v: %v < %v", q, p, prev)
		}
		prev = p
	}
}
