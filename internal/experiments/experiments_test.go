package experiments

import (
	"strings"
	"testing"
)

// The experiment tests assert the paper's *shapes*: who wins, by roughly
// what factor, where the crossovers fall. Absolute values are substrate-
// dependent and recorded in EXPERIMENTS.md instead.

func TestTableFormatting(t *testing.T) {
	tb := NewTable("title", "a", "bb")
	tb.AddRow(1, 2.5)
	tb.AddRow("xxx", 12345.6)
	s := tb.String()
	if !strings.Contains(s, "title") || !strings.Contains(s, "bb") {
		t.Errorf("table = %q", s)
	}
	if !strings.Contains(s, "12346") {
		t.Errorf("large floats should render as integers: %q", s)
	}
	if pct(0.5) != "50.0%" {
		t.Errorf("pct = %q", pct(0.5))
	}
	if ratio(0.74) != "0.74x" {
		t.Errorf("ratio = %q", ratio(0.74))
	}
	if formatFloat(0) != "0" || formatFloat(15) != "15.0" {
		t.Error("formatFloat edge cases")
	}
}

func TestFigure3Shapes(t *testing.T) {
	res, err := Figure3(1)
	if err != nil {
		t.Fatal(err)
	}
	// Control: no scaling, large slack, no throttling.
	if res.Control.NumScalings != 0 || res.Control.SumInsufficient != 0 {
		t.Errorf("control: %s", res.Control)
	}
	// VPA reduces slack but less than CaaSPER (paper: 61% vs 78.3%).
	if res.VPASlackReduction < 0.3 {
		t.Errorf("VPA slack reduction = %v, want substantial", res.VPASlackReduction)
	}
	if res.CaaSPERSlackReduction <= res.VPASlackReduction {
		t.Errorf("CaaSPER (%v) should beat VPA (%v) on slack",
			res.CaaSPERSlackReduction, res.VPASlackReduction)
	}
	if res.CaaSPERSlackReduction < 0.6 || res.CaaSPERSlackReduction > 0.95 {
		t.Errorf("CaaSPER slack reduction = %v, paper ≈0.783", res.CaaSPERSlackReduction)
	}
	// OpenShift gets trapped (paper: throughput restricted to ~27%).
	if res.OpenShiftThroughput > 0.6 {
		t.Errorf("OpenShift throughput = %v, want trapped low", res.OpenShiftThroughput)
	}
	// CaaSPER maintains 90-100% throughput.
	if res.CaaSPERThroughput < 0.9 {
		t.Errorf("CaaSPER throughput = %v, want ≥0.9", res.CaaSPERThroughput)
	}
	// OpenShift oscillates near the floor (paper: between 2 and 3).
	maxOS := 0.0
	for _, l := range res.OpenShift.Limits {
		if l > maxOS {
			maxOS = l
		}
	}
	if maxOS > 4 {
		t.Errorf("OpenShift limits reached %v, want pinned near 2-3", maxOS)
	}
	if !strings.Contains(res.Report, "Figure 3") {
		t.Error("report missing")
	}
}

func TestFigure4Shapes(t *testing.T) {
	res, err := Figure4(1)
	if err != nil {
		t.Fatal(err)
	}
	// A hard 3-core cap produces the max slope and a decisive jump.
	if res.Slope <= 2 {
		t.Errorf("slope = %v, want steep", res.Slope)
	}
	if res.TargetCores < 5 || res.TargetCores > 8 {
		t.Errorf("target = %d, paper scales 3 -> 6", res.TargetCores)
	}
	if res.RawSF < 2 {
		t.Errorf("raw SF = %v, paper ≈3.73", res.RawSF)
	}
	if res.PostScaleThrottled && res.TargetCores >= 6 {
		t.Error("6+ cores should clear the ~6-core demand")
	}
	if res.Report == "" {
		t.Error("report missing")
	}
}

func TestFigure5Shapes(t *testing.T) {
	res, err := Figure5(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThrottledSlope < 2 {
		t.Errorf("throttled slope = %v, want steep", res.ThrottledSlope)
	}
	if res.HealthySlope >= res.ThrottledSlope {
		t.Errorf("healthy slope %v should be flatter than throttled %v",
			res.HealthySlope, res.ThrottledSlope)
	}
	if res.HealthySlope < 0 {
		t.Errorf("healthy slope = %v", res.HealthySlope)
	}
	if res.Report == "" {
		t.Error("report missing")
	}
}

func TestFigure6Shapes(t *testing.T) {
	res := Figure6()
	if len(res.Slopes) != len(res.Factors) || len(res.Slopes) < 2 {
		t.Fatal("bad curve lengths")
	}
	// Monotone increasing with decelerating increments (log decay).
	for i := 1; i < len(res.Factors); i++ {
		if res.Factors[i] < res.Factors[i-1] {
			t.Fatal("SF not monotone")
		}
	}
	d1 := res.Factors[1] - res.Factors[0]
	dLast := res.Factors[len(res.Factors)-1] - res.Factors[len(res.Factors)-2]
	if dLast >= d1 {
		t.Errorf("SF increments should decay: first %v, last %v", d1, dLast)
	}
	if res.Report == "" {
		t.Error("report missing")
	}
}

func TestFigure7Shapes(t *testing.T) {
	res, err := Figure7(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnderSlope <= 0 {
		t.Errorf("under-provisioned slope = %v, want positive", res.UnderSlope)
	}
	if res.OverSlope != 0 {
		t.Errorf("over-provisioned slope = %v, want flat 0", res.OverSlope)
	}
	// Paper: walk-down by "almost 8 cores" from 12.
	if res.WalkDownDelta > -5 {
		t.Errorf("walk-down delta = %d, want a large drop", res.WalkDownDelta)
	}
	if res.Report == "" {
		t.Error("report missing")
	}
}
