package dbsim

import (
	"math"
	"testing"
	"time"

	"caasper/internal/k8s"
	"caasper/internal/workload"
)

func testSchedule(rate float64, mix workload.Mix, d time.Duration) *workload.LoadSchedule {
	return &workload.LoadSchedule{
		Name:     "test",
		Mix:      mix,
		Rate:     workload.Constant(rate),
		Duration: d,
	}
}

func newTestDB(t *testing.T, replicas, cores int, sched *workload.LoadSchedule, opts Options) (*Database, *k8s.StatefulSet, *k8s.Cluster) {
	t.Helper()
	cluster := k8s.SmallCluster()
	set, err := k8s.NewStatefulSet("db", replicas, cores, 16, cluster)
	if err != nil {
		t.Fatal(err)
	}
	db, err := New(set, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, set, cluster
}

func TestNewValidation(t *testing.T) {
	cluster := k8s.SmallCluster()
	set, _ := k8s.NewStatefulSet("db", 2, 2, 8, cluster)
	sched := testSchedule(10, workload.TPCCMix(), time.Hour)
	if _, err := New(nil, sched, DefaultOptions()); err == nil {
		t.Error("nil set should fail")
	}
	if _, err := New(set, nil, DefaultOptions()); err == nil {
		t.Error("nil schedule should fail")
	}
	if _, err := New(set, sched, Options{TimeoutSeconds: 0}); err == nil {
		t.Error("bad options should fail")
	}
	if _, err := New(set, &workload.LoadSchedule{Name: "bad"}, DefaultOptions()); err == nil {
		t.Error("invalid schedule should fail")
	}
	bad := DefaultOptions()
	bad.BaseLatencySeconds = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative base latency should fail")
	}
}

func TestUnderloadedDatabaseCompletesEverything(t *testing.T) {
	// 50 txn/s of TPC-C (~0.01 CPU-s each ≈ 0.5 cores) on 4-core pods.
	mix := workload.TPCCMix()
	sched := testSchedule(50, mix, time.Hour)
	db, _, _ := newTestDB(t, 3, 4, sched, DefaultOptions())
	for now := int64(0); now < 3600; now++ {
		db.Tick(now, nil)
	}
	s := db.Stats()
	want := 50.0 * 3600
	if math.Abs(s.CompletedTxns-want) > want*0.02 {
		t.Errorf("completed = %v, want ≈%v", s.CompletedTxns, want)
	}
	if s.DroppedTxns != 0 {
		t.Errorf("dropped = %v", s.DroppedTxns)
	}
	// Latency should be near base+service, with minimal queueing.
	if s.AvgLatencyMS > 100 {
		t.Errorf("avg latency = %v ms, want small", s.AvgLatencyMS)
	}
	if s.MedLatencyMS <= 0 || s.P99LatencyMS < s.MedLatencyMS {
		t.Errorf("latency stats inconsistent: %+v", s)
	}
	if db.Backlog() > 1 {
		t.Errorf("backlog = %v, want drained", db.Backlog())
	}
}

func TestOverloadedDatabaseThrottlesAndDrops(t *testing.T) {
	// Demand ~8 cores of work on 2-core pods without retry: timeouts
	// shed transactions and completion rate ≈ capacity share.
	mix := workload.TPCCMix()
	rate, err := workload.RateForCores(mix, 8)
	if err != nil {
		t.Fatal(err)
	}
	sched := testSchedule(rate, mix, time.Hour)
	opts := DefaultOptions()
	opts.Retry = false
	db, set, _ := newTestDB(t, 1, 2, sched, opts)
	for now := int64(0); now < 3600; now++ {
		db.Tick(now, nil)
	}
	s := db.Stats()
	if s.DroppedTxns == 0 {
		t.Fatal("overload without retry must drop transactions")
	}
	// Completed work bounded by capacity: ≈ 2 cores of the 8 demanded.
	total := s.CompletedTxns + s.DroppedTxns
	frac := s.CompletedTxns / total
	if frac > 0.35 || frac < 0.15 {
		t.Errorf("completed fraction = %v, want ≈0.25", frac)
	}
	// The pod records heavy throttled time.
	if set.Pods[0].ThrottledCPUSeconds < 1000 {
		t.Errorf("throttled seconds = %v", set.Pods[0].ThrottledCPUSeconds)
	}
	// Queueing inflates latency toward the timeout bound.
	if s.AvgLatencyMS < 1000 {
		t.Errorf("avg latency = %v ms, want heavily queued", s.AvgLatencyMS)
	}
}

func TestWritesOnlyOnPrimary(t *testing.T) {
	// A write-only mix must leave secondaries nearly idle (only the
	// replication-apply overhead).
	mix := workload.Mix{{Class: workload.TxnClass{Name: "w", CPUSeconds: 0.01, Write: true}, Weight: 1}}
	sched := testSchedule(100, mix, time.Hour) // 1 core of writes
	db, set, _ := newTestDB(t, 3, 4, sched, DefaultOptions())
	for now := int64(0); now < 1800; now++ {
		db.Tick(now, nil)
	}
	primary := set.Primary()
	for _, p := range set.Pods {
		if p == primary {
			if p.UsedCPUSeconds < 1000 {
				t.Errorf("primary used = %v, want ≈1800", p.UsedCPUSeconds)
			}
			continue
		}
		// Secondaries only burn the idle replication load (0.2 cores).
		if p.UsedCPUSeconds > 0.25*1800 {
			t.Errorf("secondary %s used = %v, want ≈%v", p.Name, p.UsedCPUSeconds, 0.2*1800)
		}
	}
}

func TestReadsSpreadAcrossReplicas(t *testing.T) {
	mix := workload.Mix{{Class: workload.TxnClass{Name: "r", CPUSeconds: 0.01, Write: false}, Weight: 1}}
	sched := testSchedule(300, mix, time.Hour) // 3 cores of reads
	opts := DefaultOptions()
	opts.SecondaryReadFraction = 2.0 / 3.0 // even split across 3 replicas
	db, set, _ := newTestDB(t, 3, 4, sched, opts)
	for now := int64(0); now < 1800; now++ {
		db.Tick(now, nil)
	}
	// Each replica serves ~1 core of reads; usage should be comparable.
	var usages []float64
	for _, p := range set.Pods {
		usages = append(usages, p.UsedCPUSeconds)
	}
	for _, u := range usages {
		if u < 0.5*1800 || u > 1.6*1800 {
			t.Errorf("replica usage %v outside the balanced band", u)
		}
	}
}

func TestRestartDropsOrRetriesBacklog(t *testing.T) {
	mix := workload.TPCCMix()
	sched := testSchedule(100, mix, time.Hour)

	run := func(retry bool) Stats {
		opts := DefaultOptions()
		opts.Retry = retry
		db, set, _ := newTestDB(t, 2, 4, sched, opts)
		for now := int64(0); now < 60; now++ {
			db.Tick(now, nil)
		}
		// Simulate a restart of the primary.
		db.OnPodDown(set.Primary())
		for now := int64(60); now < 120; now++ {
			db.Tick(now, nil)
		}
		return db.Stats()
	}

	withRetry := run(true)
	if withRetry.RetriedTxns == 0 {
		t.Error("retry mode should record retried txns")
	}
	if withRetry.InterruptedTxns == 0 {
		t.Error("restart should interrupt txns")
	}
	noRetry := run(false)
	if noRetry.DroppedTxns == 0 {
		t.Error("no-retry mode should record dropped txns")
	}
}

func TestOnPodDownUnknownPodIsNoop(t *testing.T) {
	sched := testSchedule(10, workload.TPCCMix(), time.Hour)
	db, _, _ := newTestDB(t, 2, 4, sched, DefaultOptions())
	db.OnPodDown(&k8s.Pod{Name: "ghost"})
	if s := db.Stats(); s.DroppedTxns != 0 && s.RetriedTxns != 0 {
		t.Error("unknown pod should not affect stats")
	}
}

func TestWeightedQuantile(t *testing.T) {
	samples := []float64{1, 2, 3}
	weights := []float64{1, 1, 8}
	if got := weightedQuantile(samples, weights, 0.5); got != 3 {
		t.Errorf("weighted median = %v, want 3", got)
	}
	if got := weightedQuantile(samples, weights, 0.05); got != 1 {
		t.Errorf("low quantile = %v, want 1", got)
	}
	if got := weightedQuantile(nil, nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	if got := weightedQuantile([]float64{5}, []float64{0}, 0.5); got != 0 {
		t.Errorf("zero-weight quantile = %v", got)
	}
}

func TestMetricsRecordedDuringTicks(t *testing.T) {
	sched := testSchedule(100, workload.TPCCMix(), time.Hour)
	db, set, _ := newTestDB(t, 2, 4, sched, DefaultOptions())
	ms := k8s.NewMetricsServer(60)
	for now := int64(0); now < 180; now++ {
		db.Tick(now, ms)
	}
	series := ms.UsageSeries(set.Primary().Name)
	if len(series) < 2 {
		t.Fatalf("series = %v", series)
	}
	if series[0] <= 0 {
		t.Error("primary usage should be positive")
	}
}
