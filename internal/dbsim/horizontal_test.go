package dbsim

import (
	"errors"
	"testing"
	"time"

	"caasper/internal/errs"

	"caasper/internal/k8s"
	"caasper/internal/workload"
)

func writeHeavySchedule(cores float64, d time.Duration) *workload.LoadSchedule {
	sched, err := workload.ScheduleForCores("write-heavy", workload.TPCCMix(),
		workload.Constant(cores), d)
	if err != nil {
		panic(err)
	}
	return sched
}

func TestRunHorizontalValidation(t *testing.T) {
	sched := writeHeavySchedule(4, time.Hour)
	if _, err := RunHorizontal(nil, DefaultHorizontalOptions(2, 6)); err == nil {
		t.Error("nil schedule should fail")
	}
	bad := DefaultHorizontalOptions(2, 6)
	bad.MaxReplicas = 1 // below the 3 initial replicas
	if _, err := RunHorizontal(sched, bad); err == nil {
		t.Error("MaxReplicas below initial should fail")
	}
	bad = DefaultHorizontalOptions(2, 6)
	bad.UtilizationHigh = 0
	if _, err := RunHorizontal(sched, bad); err == nil {
		t.Error("zero utilization threshold should fail")
	}
	bad = DefaultHorizontalOptions(2, 6)
	bad.DecisionEverySeconds = 0
	if _, err := RunHorizontal(sched, bad); err == nil {
		t.Error("zero cadence should fail")
	}
}

func TestRunHorizontalAddsReplicasUnderLoad(t *testing.T) {
	// 4 cores of write demand against 2-core pods: the primary runs hot
	// and the HPA scales out to its ceiling.
	sched := writeHeavySchedule(4, 4*time.Hour)
	opts := DefaultHorizontalOptions(2, 6)
	opts.Harness.DB.Retry = false
	res, err := RunHorizontal(sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumScalings == 0 {
		t.Fatal("HPA never scaled out")
	}
	if res.NumScalings > 3 {
		t.Errorf("scale-outs = %d, ceiling is 6 replicas from 3", res.NumScalings)
	}
	// The structural failure: the primary still throttles heavily and
	// throughput stays capped near the primary's share.
	if res.SumInsufficient < 100 {
		t.Errorf("primary insufficient = %v, want heavy throttling despite replicas", res.SumInsufficient)
	}
	// Billing grew with the replica count.
	flatCost := 3.0 * 2 * 4 // replicas × cores × hours
	if res.BilledCorePeriods <= flatCost {
		t.Errorf("billed = %v, want > flat %v (added replicas bill)", res.BilledCorePeriods, flatCost)
	}
}

func TestRunHorizontalIdleWorkloadStaysPut(t *testing.T) {
	sched := writeHeavySchedule(0.5, 2*time.Hour)
	opts := DefaultHorizontalOptions(2, 6)
	res, err := RunHorizontal(sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumScalings != 0 {
		t.Errorf("idle workload scaled out %d times", res.NumScalings)
	}
	// 3 replicas × 2 cores × 2 hours = 12 core-hours.
	if res.BilledCorePeriods != 12 {
		t.Errorf("billed = %v, want 12", res.BilledCorePeriods)
	}
}

func TestAddReplicaSeedsBeforeServing(t *testing.T) {
	// Direct substrate check: a scale-out pod serves nothing until its
	// seed completes, then participates in read traffic.
	mix := workload.Mix{{Class: workload.TxnClass{Name: "r", CPUSeconds: 0.01, Write: false}, Weight: 1}}
	sched := &workload.LoadSchedule{
		Name: "reads", Mix: mix, Rate: workload.Constant(400), Duration: time.Hour,
	}
	opts := DefaultOptions()
	opts.SecondaryReadFraction = 0.5
	db, set, cluster := newTestDB(t, 2, 4, sched, opts)

	p, err := set.AddReplica(cluster, 4, 120)
	if err != nil {
		t.Fatal(err)
	}
	if p.Running() {
		t.Fatal("seeding replica must not be running")
	}
	for now := int64(0); now < 120; now++ {
		db.Tick(now, nil)
	}
	if p.UsedCPUSeconds != 0 {
		t.Errorf("seeding replica consumed %v CPU", p.UsedCPUSeconds)
	}
	// Seed completes; the replica starts serving reads.
	p.Phase = k8s.PhaseRunning
	db.TrackReplica(p)
	for now := int64(120); now < 600; now++ {
		db.Tick(now, nil)
	}
	if p.UsedCPUSeconds == 0 {
		t.Error("seeded replica never served")
	}
}

func TestRunHorizontalUnboundedAndErrKinds(t *testing.T) {
	sched := writeHeavySchedule(4, 2*time.Hour)

	// Config errors carry the shared sentinel so callers can branch.
	bad := DefaultHorizontalOptions(2, 6)
	bad.MaxReplicas = 1
	if _, err := RunHorizontal(sched, bad); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Errorf("config error must wrap ErrInvalidConfig, got %v", err)
	}

	// MaxReplicas=0 is unbounded: the scaler must still add replicas
	// (it previously froze the set at its initial size).
	opts := DefaultHorizontalOptions(2, 6)
	opts.MaxReplicas = 0
	opts.Harness.DB.Retry = false
	res, err := RunHorizontal(sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumScalings == 0 {
		t.Fatal("MaxReplicas=0 must mean unbounded, not zero")
	}

	// A vector ceiling on the harness applies when MaxReplicas is 0.
	opts = DefaultHorizontalOptions(2, 6)
	opts.MaxReplicas = 0
	opts.Harness.DB.Retry = false
	opts.Harness.Resources.Max.Replicas = 4
	res, err = RunHorizontal(sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumScalings > 1 { // 3 initial replicas, ceiling 4
		t.Errorf("vector ceiling 4 from 3 replicas allows one scale-out, got %d", res.NumScalings)
	}
}
