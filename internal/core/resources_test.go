package core

import (
	"errors"
	"testing"

	"caasper/internal/errs"
)

func TestLimitsClampManagedAndUnmanaged(t *testing.T) {
	l := Limits{Min: Resources{CPUCores: 2, RAMGB: 4}, Max: Resources{CPUCores: 8, RAMGB: 16}}
	got := l.Clamp(Resources{CPUCores: 12, RAMGB: 1, DiskGB: 999, Replicas: 7})
	want := Resources{CPUCores: 8, RAMGB: 4, DiskGB: 999, Replicas: 7}
	if got != want {
		t.Fatalf("Clamp = %+v, want %+v", got, want)
	}
	// A fully-unmanaged Limits is the identity — the CPU-only contract.
	var id Limits
	in := Resources{CPUCores: 5, RAMGB: 3}
	if out := id.Clamp(in); out != in {
		t.Fatalf("zero Limits.Clamp = %+v, want identity %+v", out, in)
	}
}

func TestLimitsMulti(t *testing.T) {
	if (Limits{Max: Resources{CPUCores: 8}}).Multi() {
		t.Fatal("CPU-only limits must not report Multi")
	}
	for _, l := range []Limits{
		{Max: Resources{RAMGB: 16}},
		{Max: Resources{DiskGB: 100}},
		{Max: Resources{Replicas: 4}},
	} {
		if !l.Multi() {
			t.Fatalf("limits %+v should report Multi", l)
		}
	}
}

func TestMergeCPUDeprecatedScalarsWin(t *testing.T) {
	rr := ResourceRange{
		Initial: Resources{CPUCores: 1},
		Limits:  Limits{Min: Resources{CPUCores: 1}, Max: Resources{CPUCores: 4, RAMGB: 16}},
	}
	got := rr.MergeCPU(2, 2, 8)
	if got.Initial.CPUCores != 2 || got.Min.CPUCores != 2 || got.Max.CPUCores != 8 {
		t.Fatalf("scalar CPU fields must win: %+v", got)
	}
	if got.Min.RAMGB != 1 || got.Initial.RAMGB != 1 {
		t.Fatalf("managed RAM should default min/initial to 1: %+v", got)
	}
	// No scalars set: vector passes through.
	got = rr.MergeCPU(0, 0, 0)
	if got.Initial.CPUCores != 1 || got.Max.CPUCores != 4 {
		t.Fatalf("vector must pass through when scalars unset: %+v", got)
	}
}

func TestResourceRangeValidate(t *testing.T) {
	ok := ResourceRange{
		Initial: Resources{CPUCores: 2, RAMGB: 4},
		Limits:  Limits{Min: Resources{CPUCores: 1, RAMGB: 4}, Max: Resources{CPUCores: 8, RAMGB: 16}},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid range rejected: %v", err)
	}
	bad := []ResourceRange{
		{Limits: Limits{Min: Resources{RAMGB: 20}, Max: Resources{RAMGB: 16}}},
		{Initial: Resources{DiskGB: 200}, Limits: Limits{Max: Resources{DiskGB: 100}}},
		{Initial: Resources{CPUCores: 1}, Limits: Limits{Min: Resources{CPUCores: 2}, Max: Resources{CPUCores: 4}}},
	}
	for i, rr := range bad {
		if err := rr.Validate(); !errors.Is(err, errs.ErrInvalidConfig) {
			t.Fatalf("case %d: want ErrInvalidConfig, got %v", i, err)
		}
	}
}

func TestParseResourceSpec(t *testing.T) {
	rr, err := ParseResourceSpec("ram=4-16,disk=20-100,replicas=1-4")
	if err != nil {
		t.Fatal(err)
	}
	if rr.Min.RAMGB != 4 || rr.Max.RAMGB != 16 || rr.Initial.RAMGB != 4 {
		t.Fatalf("ram range wrong: %+v", rr)
	}
	if rr.Max.DiskGB != 100 || rr.Initial.DiskGB != 20 {
		t.Fatalf("disk range wrong: %+v", rr)
	}
	if rr.Min.Replicas != 1 || rr.Max.Replicas != 4 {
		t.Fatalf("replicas range wrong: %+v", rr)
	}
	if rr.Max.CPUCores != 0 {
		t.Fatalf("cpu must stay unmanaged: %+v", rr)
	}
	// Fixed-value clause.
	rr, err = ParseResourceSpec("disk=50")
	if err != nil {
		t.Fatal(err)
	}
	if rr.Min.DiskGB != 50 || rr.Max.DiskGB != 50 {
		t.Fatalf("fixed disk wrong: %+v", rr)
	}
	for _, s := range []string{"", "ram", "ram=0-4", "ram=8-4", "gpu=1-2", "ram=1-2,ram=2-4"} {
		if _, err := ParseResourceSpec(s); !errors.Is(err, errs.ErrInvalidConfig) {
			t.Fatalf("spec %q: want ErrInvalidConfig, got %v", s, err)
		}
	}
}

func TestDecisionCarriesVector(t *testing.T) {
	r, err := New(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	usage := make([]float64, 60)
	for i := range usage {
		usage[i] = 3.9 // hot against 4 cores → scale-up
	}
	d, err := r.Decide(4, usage)
	if err != nil {
		t.Fatal(err)
	}
	if d.Current.CPUCores != d.CurrentCores || d.Target.CPUCores != d.TargetCores {
		t.Fatalf("vector/scalar mismatch: %+v", d)
	}
	if d.Current.RAMGB != 0 || d.Target.DiskGB != 0 {
		t.Fatalf("non-CPU dimensions must stay zero from Algorithm 1: %+v", d)
	}
}
