#!/bin/sh
# Repository-wide verification gate: vet, build, race-enabled tests, and a
# short benchmark smoke over the hot paths and the parallel engine. Run it
# before sending changes (or via `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# The chaos determinism contract gets a named gate of its own: the fault
# injector, operator retry/abort lifecycle and scaler degradation paths
# must stay deterministic and race-free at any worker count.
echo "==> chaos determinism (fault injection under -race)"
go test -race -run 'Chaos|Fault|Operator|ScalerCursor|ScalerCarries|ScalerHolds|ScalerRecovers' \
    ./internal/faults/ ./internal/k8s/ ./internal/sim/

# Public-API drift gate: exported symbols of the root package must match
# the checked-in snapshot (regenerate: UPDATE=1 sh scripts/apicheck.sh).
echo "==> apicheck (exported API vs testdata/api.txt)"
sh scripts/apicheck.sh

# Chaos goldens: fixed-seed fault streams — including the multi-resource
# mem-pressure scenario — must stay byte-identical to testdata/chaos/
# (regenerate: UPDATE=1 sh scripts/chaos.sh).
echo "==> chaos goldens (fault event streams vs testdata/chaos/)"
sh scripts/chaos.sh

# Fleet determinism golden: a 16-tenant chaos fleet must produce
# byte-identical event streams at workers 1/4/8 under -race, matching
# testdata/fleet/ (regenerate: UPDATE=1 sh scripts/fleet.sh).
echo "==> fleet determinism golden"
sh scripts/fleet.sh

# Serve smoke: boot caasper-serve, load-generate two tenants, diff the
# decision streams against testdata/serve/, and require a graceful
# SIGTERM drain to leave a valid snapshot (regenerate: UPDATE=1 sh
# scripts/serve.sh).
echo "==> serve smoke (server + loadgen + decision-stream golden)"
sh scripts/serve.sh

echo "==> benchmark smoke (1x, hot paths + parallel engine)"
go test -run xxx -bench 'BenchmarkDecide|BenchmarkBuildCurve|BenchmarkSimulateWorkday' -benchtime 1x -benchmem .
go test -run xxx -bench 'BenchmarkRandomSearchParallel' -benchtime 1x -benchmem ./internal/tuning/
go test -run xxx -bench 'BenchmarkRunMatrixParallel' -benchtime 1x -benchmem ./internal/sim/

# Optional stage: capture full benchmark numbers to BENCH_sim.json and
# diff them against the previous capture (scripts/benchdiff fails on >10%
# ns/op or any allocs/op regression). Off by default (it costs real
# benchtime); enable with CHECK_BENCH=1 make check.
if [ "${CHECK_BENCH:-0}" = "1" ]; then
    echo "==> benchmark capture (scripts/bench.sh -> BENCH_sim.json)"
    PREV=""
    if [ -f BENCH_sim.json ]; then
        PREV="$(mktemp)"
        cp BENCH_sim.json "$PREV"
    fi
    sh scripts/bench.sh
    if [ -n "$PREV" ]; then
        echo "==> benchmark regression diff (scripts/benchdiff)"
        sh scripts/benchdiff "$PREV" BENCH_sim.json
        rm -f "$PREV"
    fi
fi

echo "==> OK"
