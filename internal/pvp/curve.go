// Package pvp implements the price-vs-performance curve machinery that
// CaaSPER's reactive algorithm is built on (paper §4.1–§4.2).
//
// A PvP curve, introduced by Doppler and refactored here to the CPU-only
// form the paper uses, maps each candidate SKU (an integer core count) to
// 1 − P(throttling), where P(throttling) is the empirical probability that
// the workload's CPU demand exceeds that SKU's capacity (Eq. 1). The
// curve's *slope* at the currently allocated core count signals whether
// the allocation is under-provisioned (steep), right-sized (moderate) or
// over-provisioned (flat tail), and the slope's magnitude approximates the
// severity of throttling — the paper's key observation. The scaling-factor
// function SF(s, skew) = log(skew·s + c_min) (Eq. 3) converts a slope into
// the number of cores to scale by.
package pvp

import (
	"errors"
	"fmt"
	"math"

	"caasper/internal/errs"
	"caasper/internal/stats"
)

// SKURange describes the candidate SKU ladder: every integer core count in
// [MinCores, MaxCores]. It corresponds to the "system inputs R" of
// Algorithm 1 (resource limit such as max CPU, granularity per core).
type SKURange struct {
	// MinCores is the smallest SKU offered (and the operational floor
	// c_min: Database A mandates 2 cores in the paper).
	MinCores int
	// MaxCores is the largest SKU offered (bounded by machine size).
	MaxCores int
	// PricePerCore is the per-core price used for cost annotations. Only
	// ratios matter in this repository; the default of 1.0 is fine.
	PricePerCore float64
}

// Validate checks range invariants. Failures wrap errs.ErrInvalidConfig.
func (r SKURange) Validate() error {
	if r.MinCores < 1 {
		return fmt.Errorf("pvp: MinCores must be ≥ 1: %w", errs.ErrInvalidConfig)
	}
	if r.MaxCores < r.MinCores {
		return fmt.Errorf("pvp: MaxCores must be ≥ MinCores: %w", errs.ErrInvalidConfig)
	}
	return nil
}

// Count returns the number of SKUs on the ladder.
func (r SKURange) Count() int { return r.MaxCores - r.MinCores + 1 }

// Point is one SKU's entry on a PvP curve.
type Point struct {
	// Cores is the SKU's core count.
	Cores int
	// Performance is 1 − P(throttling) for this SKU under the workload,
	// in [0, 1]. Higher is better.
	Performance float64
	// MonthlyPrice is the SKU's price (Cores × PricePerCore).
	MonthlyPrice float64
}

// Curve is a personalised price-vs-performance curve: one Point per SKU,
// ascending in cores, derived from an observed (and possibly forecast-
// extended) CPU usage window.
type Curve struct {
	Points []Point
	Range  SKURange
	// slopes caches the scaled forward differences, computed once at
	// build time. Decide evaluates the slope three ways per decision
	// (SlopeAt, Skew, FlatTailAt); recomputing the full vector each time
	// was the dominant per-decision cost.
	slopes []float64
	// buckets is BuildCurveInto's reusable exceed-count histogram
	// (Count()+1 slots), making the rebuild O(samples + SKUs) instead of
	// O(samples × SKUs).
	buckets []int
}

// SlopeScale converts raw per-core probability differences into the slope
// units used throughout the paper: the raw forward difference of the
// [0, 1]-valued curve is multiplied by this factor, so the paper's "small"
// slope range 0–2 corresponds to ≤ 0.2 probability mass per core and its
// inflection-point examples (s ≈ 1.4 at heavy throttling) land where the
// figures show them.
const SlopeScale = 10.0

// BuildCurve constructs the PvP curve for a usage window (Eq. 1 restricted
// to the CPU dimension): for each SKU with capacity R_i cores,
//
//	P(throttling | SKU_i) = fraction of samples with usage > R_i·(1-eps)
//
// where eps is a small tolerance that treats samples pinned at a cap as
// exceeding it — observed usage can never exceed the current limit, so a
// sample *at* the limit is evidence of throttling, not of a perfect fit.
// This is exactly why the paper's Figure 5a trace (capped at 8 cores)
// produces a steep slope at the 8-core SKU.
func BuildCurve(usage []float64, r SKURange) (*Curve, error) {
	c := &Curve{}
	if err := BuildCurveInto(c, usage, r); err != nil {
		return nil, err
	}
	return c, nil
}

// BuildCurveInto rebuilds c for a new usage window, reusing the point and
// slope storage left over from earlier builds — the per-decision
// allocation cut exploited by the simulator's hot loop, where one curve is
// rebuilt per decision tick over thousands of ticks. The resulting curve
// is indistinguishable from a fresh BuildCurve result.
func BuildCurveInto(c *Curve, usage []float64, r SKURange) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if len(usage) == 0 {
		return errors.New("pvp: empty usage window")
	}
	const eps = 0.02 // 2% of capacity: "at the cap" counts as throttled
	price := r.PricePerCore
	if price <= 0 {
		price = 1
	}
	k := r.Count()
	points := c.Points[:0]
	if cap(points) < k {
		points = make([]Point, 0, k)
	}

	// One histogram pass instead of a per-SKU scan: the per-SKU exceed
	// predicate u > cores·(1−eps) is monotone in cores, so each sample
	// contributes to a contiguous prefix of the ladder. Bucket every
	// sample by the LARGEST core count it still exceeds (found by an
	// estimate plus an exact-predicate fixup, so float rounding at the
	// boundary cannot diverge from the direct comparison), then a single
	// suffix sum yields every SKU's exceed count. The resulting counts —
	// and therefore every Performance value — are bit-identical to the
	// O(samples × SKUs) scan.
	// Small ladders (the common case) histogram into a stack array, so
	// even one-shot BuildCurve calls pay no extra allocation; only ladders
	// wider than the array fall back to the reusable heap buffer. The
	// heap slice is stored through its own variable — never through
	// `buckets` — so the stack array cannot be forced to escape.
	var stack [64]int
	var buckets []int
	switch {
	case k+1 <= len(stack):
		buckets = stack[:k+1] // zeroed at declaration
	case cap(c.buckets) >= k+1:
		buckets = c.buckets[:k+1]
		for i := range buckets {
			buckets[i] = 0
		}
	default:
		grown := make([]int, k+1)
		c.buckets = grown
		buckets = grown
	}
	const factor = 1 - eps
	for _, u := range usage {
		// Largest cores in [MinCores-1, MaxCores] with u > cores·factor
		// (MinCores-1 encodes "exceeds none"). int(u/factor) lands within
		// one of the truth for finite u; NaN/±Inf hit the clamps and the
		// exact-predicate loops leave them on the correct side.
		hi := int(u / factor)
		if !(hi >= r.MinCores-1) { // also catches NaN conversions
			hi = r.MinCores - 1
		}
		if hi > r.MaxCores {
			hi = r.MaxCores
		}
		for hi < r.MaxCores && u > float64(hi+1)*factor {
			hi++
		}
		for hi >= r.MinCores && !(u > float64(hi)*factor) {
			hi--
		}
		buckets[hi-(r.MinCores-1)]++
	}

	// exceed for the t-th SKU (cores = MinCores+t) = Σ_{j>t} buckets[j].
	exceed := 0
	for t := k; t >= 1; t-- {
		exceed += buckets[t]
		// Filled in ladder order below; stash the suffix sum in place.
		buckets[t] = exceed
	}
	for t := 0; t < k; t++ {
		cores := r.MinCores + t
		p := float64(buckets[t+1]) / float64(len(usage))
		points = append(points, Point{
			Cores:        cores,
			Performance:  1 - p,
			MonthlyPrice: float64(cores) * price,
		})
	}
	c.Points = points
	c.Range = r
	c.slopes = appendSlopes(c.slopes[:0], points)
	return nil
}

// appendSlopes appends the scaled forward differences of the points'
// performance values to dst and returns it (nil when fewer than 2 points,
// matching stats.Slopes).
func appendSlopes(dst []float64, points []Point) []float64 {
	if len(points) < 2 {
		return nil
	}
	if cap(dst) < len(points)-1 {
		dst = make([]float64, 0, len(points)-1)
	}
	for i := 0; i+1 < len(points); i++ {
		dst = append(dst, (points[i+1].Performance-points[i].Performance)*SlopeScale)
	}
	return dst
}

// Performance returns 1 − P(throttling) at the given core count, clamping
// to the ladder's endpoints.
func (c *Curve) Performance(cores int) float64 {
	idx := stats.ClampInt(cores-c.Range.MinCores, 0, len(c.Points)-1)
	return c.Points[idx].Performance
}

// Slopes returns the scaled forward differences of the curve: out[i] is
// the slope between SKU i and SKU i+1 (length Count-1). All slopes are
// non-negative because performance is monotone non-decreasing in cores.
// Curves built by BuildCurve return their cached slope vector — treat the
// result as read-only.
func (c *Curve) Slopes() []float64 {
	if c.slopes != nil || len(c.Points) < 2 {
		return c.slopes
	}
	// Hand-assembled curve (no build-time cache): compute fresh without
	// mutating c, so concurrent readers stay race-free.
	return appendSlopes(nil, c.Points)
}

// SlopeAt returns the slope at the given core count: the scaled increase
// in performance from moving one core *up* from cores. At the top of the
// ladder the slope is 0 by definition (no larger SKU exists). Below the
// bottom it returns the first slope.
func (c *Curve) SlopeAt(cores int) float64 {
	slopes := c.Slopes()
	if len(slopes) == 0 {
		return 0
	}
	idx := cores - c.Range.MinCores
	if idx < 0 {
		idx = 0
	}
	if idx >= len(slopes) {
		return 0
	}
	return slopes[idx]
}

// Skew returns the Fisher–Pearson skewness of the curve's slope
// distribution, floored at zero. A high skew indicates that the usage
// probability mass is concentrated at one end of the SKU ladder — the
// condition under which the paper scales more aggressively (Eq. 3).
func (c *Curve) Skew() float64 {
	sk := stats.Skewness(c.Slopes())
	if sk < 0 || math.IsNaN(sk) {
		return 0
	}
	return sk
}

// FlatTailAt reports whether the given core count sits on the flat
// over-provisioned tail of the curve (paper Figure 7b): zero slope at the
// allocation with performance already at the curve's maximum.
func (c *Curve) FlatTailAt(cores int) bool {
	if c.SlopeAt(cores) != 0 {
		return false
	}
	top := c.Points[len(c.Points)-1].Performance
	return c.Performance(cores) >= top
}

// WalkDown walks left from the given core count to the cheapest SKU whose
// performance still meets perfTarget (e.g. 1.0 for "100% of observations
// under capacity"). It returns the current cores unchanged if no cheaper
// SKU qualifies. This implements the scale-down mechanism of Algorithm 1
// line 12–13 for heavily over-provisioned customers.
func (c *Curve) WalkDown(cores int, perfTarget float64) int {
	best := cores
	for k := cores - 1; k >= c.Range.MinCores; k-- {
		if c.Performance(k) >= perfTarget {
			best = k
		} else {
			break
		}
	}
	return best
}

// String renders a compact description for logs and explanations.
func (c *Curve) String() string {
	if len(c.Points) == 0 {
		return "Curve{}"
	}
	return fmt.Sprintf("Curve{%d SKUs %d..%d cores, perf %.2f..%.2f}",
		len(c.Points), c.Range.MinCores, c.Range.MaxCores,
		c.Points[0].Performance, c.Points[len(c.Points)-1].Performance)
}
