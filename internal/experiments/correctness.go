package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"caasper/internal/core"
	"caasper/internal/dbsim"
	"caasper/internal/recommend"
	"caasper/internal/sim"
	"caasper/internal/stats"
	"caasper/internal/workload"
)

// CorrectnessResult holds the §5 simulator-correctness check: the paired
// t-test between the decision series of the live (transaction-level,
// Kubernetes-substrate) loop and of the trace-driven simulator on the
// same workload and configuration.
type CorrectnessResult struct {
	// TTest is the paired test outcome; the simulator is validated when
	// the difference is NOT significant at α = 0.05.
	TTest stats.TTestResult
	// LiveDecisions / SimDecisions are the compared series (trimmed to
	// equal length).
	LiveDecisions, SimDecisions []float64
	// Equivalent is TTest.P ≥ 0.05 — the paper's acceptance criterion.
	Equivalent bool
	Report     string
}

// SimulatorCorrectness reproduces the §5 validation: the compressed
// workday schedule is run through the full live loop, its CPU demand
// trace is replayed through the simulator with an identically configured
// recommender, and the two decision series are compared with a paired
// t-test at α = 0.05 ("the decision values produced by the simulator and
// the real runs are statistically equivalent on average").
func SimulatorCorrectness(seed uint64) (*CorrectnessResult, error) {
	// Both the live loop and the simulator must replay the *same*
	// demand sequence, so the workday trace is rendered once and the
	// transaction schedule derived from it.
	tr := workload.Workday12h(seed)
	sched, err := workload.ScheduleForCores("workday-correctness",
		workload.MixedOLTP(), workload.TracePattern(tr), 12*time.Hour)
	if err != nil {
		return nil, err
	}

	const maxCores = 6
	cfg := core.DefaultConfig(maxCores)

	liveRec, err := recommend.NewCaaSPERReactive(cfg, 40)
	if err != nil {
		return nil, err
	}
	liveOpts := dbsim.DatabaseAOptions(maxCores, maxCores)
	live, err := dbsim.RunLive(sched, liveRec, liveOpts)
	if err != nil {
		return nil, fmt.Errorf("live run: %w", err)
	}

	// The simulator replays the schedule's expected CPU demand trace.
	demand := sched.DemandTrace()
	if demand.Interval != time.Minute {
		return nil, errors.New("experiments: demand trace not on a 1-minute grid")
	}
	simRec, err := recommend.NewCaaSPERReactive(cfg, 40)
	if err != nil {
		return nil, err
	}
	simOpts := sim.DefaultOptions(maxCores, maxCores)
	simOpts.ResizeDelayMinutes = int(liveOpts.RestartSecondsPerPod) * liveOpts.Replicas / 60
	simRes, err := sim.Run(demand, simRec, simOpts)
	if err != nil {
		return nil, fmt.Errorf("sim run: %w", err)
	}

	a := live.DecisionSeries
	b := simRes.DecisionSeries
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n < 2 {
		return nil, errors.New("experiments: decision series too short for a t-test")
	}
	a, b = a[:n], b[:n]
	tt, err := stats.PairedTTest(a, b)
	if err != nil {
		return nil, err
	}

	res := &CorrectnessResult{
		TTest:         tt,
		LiveDecisions: a,
		SimDecisions:  b,
		Equivalent:    !tt.Significant(0.05),
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Section 5 — simulator correctness (paired t-test on decision series)\n")
	fmt.Fprintf(&sb, "pairs=%d  mean diff=%.3f cores  t=%.3f  df=%d  p=%.3f\n",
		tt.N, tt.MeanDiff, tt.T, tt.DF, tt.P)
	verdict := "EQUIVALENT (p ≥ 0.05): simulator decisions match live decisions"
	if !res.Equivalent {
		verdict = "DIFFERENT (p < 0.05): simulator decisions diverge from live decisions"
	}
	fmt.Fprintf(&sb, "%s\n", verdict)
	fmt.Fprintf(&sb, "paper: decision values statistically equivalent on average at alpha 0.05 across all tested workloads\n")
	res.Report = sb.String()
	return res, nil
}
