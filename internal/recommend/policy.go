package recommend

import "math"

// MemoryPolicy sizes the RAM dimension with Zerops' dual-threshold rule:
// scale up when free memory falls below the HIGHER of an absolute
// min-free floor (GB) and a percent-free floor (fraction of the granted
// allocation). The absolute floor protects small allocations where a
// percentage is meaningless; the percentage protects large ones where a
// fixed floor is too tight. Scale-down uses the same threshold with a
// hysteresis multiplier so allocations don't flap around the boundary.
type MemoryPolicy struct {
	// MinFreeGB is the absolute free-memory floor (default 0.5 GB).
	MinFreeGB float64
	// MinFreePct is the fractional free-memory floor, 0–1 exclusive
	// (default 0.2, i.e. keep 20% of the grant free).
	MinFreePct float64
	// MaxStepUpGB caps a single upward step (default 4 GB).
	MaxStepUpGB int
	// MaxStepDownGB caps a single downward step (default 2 GB).
	MaxStepDownGB int
	// DownFactor scales the threshold for shrinking: only shrink when
	// free exceeds DownFactor × threshold (default 2 — hysteresis).
	DownFactor float64
}

// DefaultMemoryPolicy returns the production-shaped defaults.
func DefaultMemoryPolicy() MemoryPolicy {
	return MemoryPolicy{MinFreeGB: 0.5, MinFreePct: 0.2, MaxStepUpGB: 4, MaxStepDownGB: 2, DownFactor: 2}
}

func (p MemoryPolicy) withDefaults() MemoryPolicy {
	d := DefaultMemoryPolicy()
	if p.MinFreeGB <= 0 {
		p.MinFreeGB = d.MinFreeGB
	}
	if p.MinFreePct <= 0 || p.MinFreePct >= 1 {
		p.MinFreePct = d.MinFreePct
	}
	if p.MaxStepUpGB < 1 {
		p.MaxStepUpGB = d.MaxStepUpGB
	}
	if p.MaxStepDownGB < 1 {
		p.MaxStepDownGB = d.MaxStepDownGB
	}
	if p.DownFactor < 1 {
		p.DownFactor = d.DownFactor
	}
	return p
}

// Threshold is the dual-threshold free-memory floor for an allocation:
// max(MinFreeGB, MinFreePct × allocGB). Higher wins.
func (p MemoryPolicy) Threshold(allocGB float64) float64 {
	p = p.withDefaults()
	if pct := p.MinFreePct * allocGB; pct > p.MinFreeGB {
		return pct
	}
	return p.MinFreeGB
}

// Target recommends an integer RAM allocation in [minGB, maxGB] given
// the current allocation and the peak resident usage (GB) observed over
// the decision window. Deterministic: pure integer/float arithmetic.
func (p MemoryPolicy) Target(allocGB int, peakUsedGB float64, minGB, maxGB int) int {
	p = p.withDefaults()
	if allocGB < minGB {
		allocGB = minGB
	}
	thr := p.Threshold(float64(allocGB))
	free := float64(allocGB) - peakUsedGB

	// The allocation both thresholds would be satisfied at.
	needed := int(math.Ceil(peakUsedGB + p.MinFreeGB))
	if n := int(math.Ceil(peakUsedGB / (1 - p.MinFreePct))); n > needed {
		needed = n
	}
	if needed < minGB {
		needed = minGB
	}
	if needed > maxGB {
		needed = maxGB
	}

	switch {
	case free < thr: // under-provisioned: grow toward needed, capped step
		target := needed
		if target > allocGB+p.MaxStepUpGB {
			target = allocGB + p.MaxStepUpGB
		}
		if target <= allocGB {
			target = allocGB + 1
		}
		if target > maxGB {
			target = maxGB
		}
		return target
	case free > p.DownFactor*thr: // comfortably over: shrink, capped step
		target := allocGB - p.MaxStepDownGB
		if target < needed {
			target = needed
		}
		if target < minGB {
			target = minGB
		}
		if target > allocGB {
			target = allocGB
		}
		return target
	default:
		return allocGB
	}
}

// DiskPolicy sizes persistent volumes. Disk is grow-only (shrinking a
// volume in place is destructive on every major CaaS), so the target is
// monotone in the high-water usage mark.
type DiskPolicy struct {
	// HeadroomPct keeps this fraction of the volume free (default 0.2).
	HeadroomPct float64
	// StepGB rounds growth up to a multiple of this (default 5 GB).
	StepGB int
}

// DefaultDiskPolicy returns the grow-only defaults.
func DefaultDiskPolicy() DiskPolicy { return DiskPolicy{HeadroomPct: 0.2, StepGB: 5} }

func (p DiskPolicy) withDefaults() DiskPolicy {
	d := DefaultDiskPolicy()
	if p.HeadroomPct <= 0 || p.HeadroomPct >= 1 {
		p.HeadroomPct = d.HeadroomPct
	}
	if p.StepGB < 1 {
		p.StepGB = d.StepGB
	}
	return p
}

// Target recommends an integer volume size ≥ allocGB (grow-only) that
// keeps HeadroomPct free above the high-water usage mark, rounded up to
// a StepGB multiple and clamped to maxGB.
func (p DiskPolicy) Target(allocGB int, usedGB float64, maxGB int) int {
	p = p.withDefaults()
	need := int(math.Ceil(usedGB / (1 - p.HeadroomPct)))
	if rem := need % p.StepGB; rem != 0 {
		need += p.StepGB - rem
	}
	if need <= allocGB {
		return allocGB // grow-only: never shrink
	}
	if maxGB > 0 && need > maxGB {
		need = maxGB
	}
	if need < allocGB {
		return allocGB
	}
	return need
}
