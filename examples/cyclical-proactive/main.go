// Cyclical-proactive: the paper's Figure 10 story at trace level — on a
// recurring daily workload, the proactive mode (seasonal-naive forecast
// feeding Algorithm 1) scales up *before* the daily surge arrives, while
// the purely reactive mode pays a throttling penalty at every onset.
//
//	go run ./examples/cyclical-proactive
package main

import (
	"fmt"
	"log"

	"caasper"
)

func main() {
	tr := caasper.Workloads["cyclical3d"](7)
	const maxCores = 14
	cfg := caasper.DefaultConfig(maxCores)
	opts := caasper.DefaultSimOptions(maxCores, maxCores)
	opts.ResizeDelayMinutes = 4 // Database B-style resizes

	reactive, err := caasper.NewReactive(cfg, 40)
	if err != nil {
		log.Fatal(err)
	}
	reactiveRes, err := caasper.Simulate(tr.Clone(), reactive, opts)
	if err != nil {
		log.Fatal(err)
	}

	const season = 24 * 60 // daily pattern at one-minute samples
	proactive, err := caasper.NewProactive(cfg, caasper.NewSeasonalNaive(season), 40, 60, season)
	if err != nil {
		log.Fatal(err)
	}
	proactiveRes, err := caasper.Simulate(tr.Clone(), proactive, opts)
	if err != nil {
		log.Fatal(err)
	}

	control := caasper.NewControl(maxCores)
	controlRes, err := caasper.Simulate(tr.Clone(), control, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %12s %10s %12s %10s\n",
		"run", "sum slack", "sum insuff", "scalings", "throttled", "cost")
	for _, r := range []*caasper.SimResult{controlRes, reactiveRes, proactiveRes} {
		fmt.Printf("%-22s %12.0f %12.1f %10d %11.2f%% %9.0fh\n",
			r.Recommender, r.SumSlack, r.SumInsufficient, r.NumScalings,
			r.ThrottledPct*100, r.BilledCorePeriods)
	}

	fmt.Printf("\nvs control: reactive saves %.0f%% slack at %.0f%% of the cost;",
		reactiveRes.SlackReductionVs(controlRes)*100,
		reactiveRes.CostRatioVs(controlRes)*100)
	fmt.Printf(" proactive saves %.0f%% slack at %.0f%% of the cost\n",
		proactiveRes.SlackReductionVs(controlRes)*100,
		proactiveRes.CostRatioVs(controlRes)*100)
	fmt.Printf("proactive throttling is %.1fx the reactive level (lower is better)\n",
		safeRatio(proactiveRes.SumInsufficient, reactiveRes.SumInsufficient))
	fmt.Println("\npaper (Table 1, cyclical): slack -66.5% reactive / -68.2% proactive, price 0.57y / 0.56y")
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
