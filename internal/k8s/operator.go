package k8s

import (
	"fmt"
	"sort"

	"caasper/internal/errs"
	"caasper/internal/faults"
	"caasper/internal/obs"
)

// Restart-resilience defaults (see the matching Operator fields).
const (
	// defaultMaxRestartRetries is the retry budget per pod after its
	// first failed attempt.
	defaultMaxRestartRetries = 2
	// defaultBackoffBaseSeconds is the first retry delay; later retries
	// double it (30 s, 60 s, 120 s, …).
	defaultBackoffBaseSeconds = 30
)

// Operator coordinates a stateful set's state transitions (paper Figure 1,
// step 1): role management, failover, and — central to this repository —
// rolling updates with restart (§2.2): a resize restarts pods one at a
// time, secondaries first, the initial primary last, each restart evicting
// and rescheduling the pod with its new resource spec.
//
// The operator is tick-driven: call Tick once per simulated second.
//
// Restarts are allowed to misbehave (the faults layer injects failed and
// stuck attempts, and scheduling pressure): each pod restart is one
// *attempt* with a patience budget (RestartAttemptTimeoutSeconds); an
// attempt that fails, hangs past its budget, or cannot schedule retries
// with exponential backoff up to MaxRestartRetries times, and when the
// budget is exhausted the whole rolling update aborts into a consistent
// whole-set spec — never a split one — after which the scaler resumes
// deciding on the next tick.
type Operator struct {
	// Set is the managed stateful set.
	Set *StatefulSet
	// Cluster schedules restarted pods.
	Cluster *Cluster
	// RestartSeconds is how long one pod's deallocate/reschedule/restart
	// cycle takes. Database A's strict HA flow takes ~300 s per pod (a
	// 3-replica resize spans the paper's 5–15 minute window); Database B
	// ~120 s.
	RestartSeconds int64

	// InPlace enables the Kubernetes in-place pod resize feature the
	// paper evaluates as future work (§2.2 footnote 4, §6.2 footnote 10,
	// §8): limits change without deallocating pods, so resizes complete
	// in one tick with no restarts, no dropped connections and no
	// failover. The paper reports that with this feature "neither the
	// scale-up lag nor failed transactions occur".
	InPlace bool

	// Faults, when non-nil, injects failed restarts, stuck restarts and
	// scheduling pressure (faults package). Nil is the fault-free fast
	// path: every hook below reduces to one nil check.
	Faults *faults.Injector
	// MaxRestartRetries bounds retries per pod after its first failed
	// attempt before the update aborts (0 selects the default, 2).
	MaxRestartRetries int
	// RestartAttemptTimeoutSeconds is the patience budget of a single
	// restart attempt: an attempt still incomplete this long after it
	// began (stuck container, scheduling stall) is declared failed and
	// retried (0 selects the default, 2×RestartSeconds).
	RestartAttemptTimeoutSeconds int64
	// BackoffBaseSeconds is the first retry delay; retry n waits
	// base·2^(n−1) before the next attempt (0 selects the default, 30 s).
	BackoffBaseSeconds int64

	// OnPodDown, OnPodUp and OnFailover, when non-nil, notify the
	// application layer (the database simulator drops the pod's
	// connections on restart, matching the paper's "user connections
	// are interrupted when a pod instance restarts").
	OnPodDown  func(p *Pod)
	OnPodUp    func(p *Pod)
	OnFailover func(oldPrimary, newPrimary *Pod)

	// FailoverCount counts primary hand-offs (observability).
	FailoverCount int
	// ResizeCount counts completed rolling updates.
	ResizeCount int
	// RestartRetries counts restart attempts that were retried after a
	// failure, hang or scheduling stall.
	RestartRetries int
	// ResizesAborted counts rolling updates that gave up and rolled the
	// set back to a consistent spec.
	ResizesAborted int

	// Events, when non-nil and enabled, receives the operator's
	// structured lifecycle stream keyed on simulated seconds:
	// "k8s.resize-requested" / "k8s.resize-rejected", "k8s.rolling-phase"
	// per pod transition, "k8s.restart-disruption" per eviction,
	// "k8s.restart-retry" per backed-off retry, "k8s.resize-aborted" on
	// rollback, "k8s.failover" per hand-off and a "k8s.resize-completed"
	// span event carrying the update's simulated duration.
	Events obs.Sink
	// Stats, when non-nil, receives runtime counters (pod restarts,
	// failovers, completed resizes, retries, aborts).
	Stats *obs.Registry

	// rolling-update state
	updating    bool
	started     bool // first restart of the update has begun
	targetCores int
	fromCores   int      // limit before the update (rollback anchor)
	resizeSpan  obs.Span // open resize interval, ends at completion
	queue       []*Pod   // pods still to restart, in restart order
	inFlight    *Pod     // pod currently restarting
	// attempt counts restart attempts for the in-flight pod (1 = first);
	// attemptDeadline is the tick at which the current attempt is
	// declared failed.
	attempt         int
	attemptDeadline int64
	// recovering is an aborted update's in-flight pod still being
	// brought back up at the rolled-back spec. While it is non-nil the
	// operator reports idle (the scaler decides again) but rejects new
	// resizes.
	recovering *Pod
	// EffectiveAt records when the most recent resize became effective
	// for the primary (users "experience" the new allocation).
	EffectiveAt int64
}

// NewOperator builds an operator.
func NewOperator(set *StatefulSet, cluster *Cluster, restartSeconds int64) (*Operator, error) {
	if set == nil || cluster == nil {
		return nil, fmt.Errorf("k8s: operator needs a set and a cluster: %w", errs.ErrInvalidConfig)
	}
	if restartSeconds < 1 {
		return nil, fmt.Errorf("k8s: restartSeconds must be ≥ 1: %w", errs.ErrInvalidConfig)
	}
	return &Operator{Set: set, Cluster: cluster, RestartSeconds: restartSeconds}, nil
}

// Updating reports whether a rolling update is in flight.
func (o *Operator) Updating() bool { return o.updating }

// Recovering reports whether an aborted update's last pod is still being
// brought back up.
func (o *Operator) Recovering() bool { return o.recovering != nil }

// TargetCores returns the in-flight resize target (0 when idle).
func (o *Operator) TargetCores() int {
	if !o.updating {
		return 0
	}
	return o.targetCores
}

// ResizeDuration returns the expected wall time of a full rolling update.
func (o *Operator) ResizeDuration() int64 {
	return o.RestartSeconds * int64(len(o.Set.Pods))
}

// maxRestartAttempts returns the attempt budget per pod (first attempt
// plus retries).
func (o *Operator) maxRestartAttempts() int {
	retries := o.MaxRestartRetries
	if retries <= 0 {
		retries = defaultMaxRestartRetries
	}
	return retries + 1
}

// attemptTimeout returns the per-attempt patience budget in seconds.
func (o *Operator) attemptTimeout() int64 {
	if o.RestartAttemptTimeoutSeconds > 0 {
		return o.RestartAttemptTimeoutSeconds
	}
	return 2 * o.RestartSeconds
}

// emit sends one lifecycle event when the sink is enabled.
func (o *Operator) emit(now int64, typ string, fields ...obs.Field) {
	if obs.Enabled(o.Events) {
		o.Events.Emit(obs.Event{T: now, Type: typ, Fields: fields})
	}
}

// RequestResize begins a rolling update to the new whole-core limit. It
// fails while another update (or an abort recovery) is in flight — the
// scaler serializes on this — or when the target equals the current limit.
func (o *Operator) RequestResize(targetCores int, now int64) error {
	if o.updating {
		o.emit(now, "k8s.resize-rejected", obs.I("to", int64(targetCores)), obs.S("reason", "update in flight"))
		return fmt.Errorf("k8s: resize to %d rejected: update to %d in flight", targetCores, o.targetCores)
	}
	if o.recovering != nil {
		o.emit(now, "k8s.resize-rejected", obs.I("to", int64(targetCores)), obs.S("reason", "abort recovery in flight"))
		return fmt.Errorf("k8s: resize to %d rejected: pod %s still recovering from an aborted update", targetCores, o.recovering.Name)
	}
	if targetCores < 1 {
		o.emit(now, "k8s.resize-rejected", obs.I("to", int64(targetCores)), obs.S("reason", "invalid target"))
		return fmt.Errorf("k8s: invalid target %d", targetCores)
	}
	from := o.Set.CPULimit()
	if targetCores == from {
		o.emit(now, "k8s.resize-rejected", obs.I("to", int64(targetCores)), obs.S("reason", "target equals current limit"))
		return fmt.Errorf("k8s: target %d equals current limit", targetCores)
	}
	if o.InPlace {
		// In-place resize: patch every pod's spec without a restart.
		// Node request accounting moves with the spec; a scale-up that
		// no longer fits its node would be rejected by the real
		// scheduler too, so reject it here rather than over-commit.
		o.emit(now, "k8s.resize-requested",
			obs.I("from", int64(from)), obs.I("to", int64(targetCores)), obs.S("mode", "in-place"))
		if err := o.resizeInPlace(targetCores); err != nil {
			o.emit(now, "k8s.resize-rejected", obs.I("to", int64(targetCores)), obs.S("reason", err.Error()))
			return err
		}
		o.ResizeCount++
		o.EffectiveAt = now
		o.Stats.Counter("k8s.resizes_completed").Inc()
		o.emit(now, "k8s.resize-completed",
			obs.I("dur", 0), obs.I("to", int64(targetCores)), obs.S("mode", "in-place"))
		return nil
	}
	o.updating = true
	o.started = false
	o.targetCores = targetCores
	o.fromCores = from
	o.emit(now, "k8s.resize-requested",
		obs.I("from", int64(from)), obs.I("to", int64(targetCores)),
		obs.S("mode", "rolling"), obs.I("pods", int64(len(o.Set.Pods))))
	o.resizeSpan = obs.StartSpan(o.Events, "k8s.resize-completed", now)

	// Restart order: secondaries by ordinal, the current primary last
	// (§3.1: "the operator policy prioritizes updating the initial
	// primary replica last to avoid additional client failovers").
	var secondaries, primaries []*Pod
	for _, p := range o.Set.Pods {
		if p.Role == RolePrimary {
			primaries = append(primaries, p)
		} else {
			secondaries = append(secondaries, p)
		}
	}
	sort.Slice(secondaries, func(i, j int) bool { return secondaries[i].Ordinal < secondaries[j].Ordinal })
	o.queue = append(secondaries, primaries...)
	return nil
}

// resizeInPlace patches every pod's spec through the cluster's in-place
// resize path, validating feasibility pod by pod. On a mid-way failure it
// rolls the already-patched pods back so the set never ends up split.
func (o *Operator) resizeInPlace(targetCores int) error {
	spec := NewGuaranteedSpec(targetCores, o.Set.MemGiBPerPod)
	var done []*Pod
	var prev []ContainerSpec
	for _, p := range o.Set.Pods {
		old := p.Spec
		if err := o.Cluster.ResizeInPlace(p, spec); err != nil {
			for i := len(done) - 1; i >= 0; i-- {
				// Shrinking back to the previous spec always fits.
				if rbErr := o.Cluster.ResizeInPlace(done[i], prev[i]); rbErr != nil {
					// Rollback of a shrink cannot fail; if it somehow
					// does, surface both errors loudly.
					return fmt.Errorf("k8s: in-place rollback failed: %v (original: %w)", rbErr, err)
				}
			}
			return err
		}
		done = append(done, p)
		prev = append(prev, old)
	}
	return nil
}

// Tick advances the rolling-update state machine by one step at time now
// (seconds). It finishes at most one restart and starts at most one per
// call; with one call per simulated second this matches the serialized
// per-pod flow.
func (o *Operator) Tick(now int64) {
	if o.Faults != nil {
		o.Cluster.SetPressure(o.Faults.PressureCores(now))
	}

	// Post-abort recovery: the aborted update's in-flight pod still has
	// to come back up (at the rolled-back spec) even though the update
	// itself ended and the scaler is deciding again. Recovery ignores
	// injected restart failures — it must terminate — but competes for
	// capacity like any restart, so scheduling pressure still delays it.
	if o.recovering != nil && now >= o.recovering.RestartingUntil {
		p := o.recovering
		if err := o.Cluster.Schedule(p); err == nil {
			p.Phase = PhaseRunning
			p.Restarts++
			o.recovering = nil
			o.Stats.Counter("k8s.pod_restarts").Inc()
			o.emit(now, "k8s.rolling-phase",
				obs.S("pod", p.Name), obs.S("phase", "recovered"), obs.I("restarts", int64(p.Restarts)))
			if o.OnPodUp != nil {
				o.OnPodUp(p)
			}
		} else {
			o.Stats.Counter("k8s.sched_retries").Inc()
		}
	}

	if !o.updating {
		return
	}

	// Complete — or give up on — an in-flight restart attempt.
	if o.inFlight != nil {
		p := o.inFlight
		if now >= o.attemptDeadline {
			// The attempt outlived its patience budget: a stuck
			// container or a scheduling stall. Retry with backoff or
			// abort the update.
			o.retryOrAbort(now, p, "attempt timed out")
			return
		}
		if now < p.RestartingUntil {
			return // still restarting
		}
		if o.Faults.RestartFails(p.Name, now) {
			o.retryOrAbort(now, p, "restart failed")
			return
		}
		if err := o.Cluster.Schedule(p); err != nil {
			// No capacity right now: retry next tick, bounded by the
			// attempt deadline. Real operators back off; one-second
			// retries are equivalent here.
			o.Stats.Counter("k8s.sched_retries").Inc()
			return
		}
		p.Phase = PhaseRunning
		p.Restarts++
		o.inFlight = nil
		o.attempt = 0
		o.Stats.Counter("k8s.pod_restarts").Inc()
		o.emit(now, "k8s.rolling-phase",
			obs.S("pod", p.Name), obs.S("phase", "running"), obs.I("restarts", int64(p.Restarts)))
		if o.OnPodUp != nil {
			o.OnPodUp(p)
		}
	}

	// Start the next restart, or finish the update.
	if len(o.queue) == 0 {
		o.updating = false
		o.ResizeCount++
		o.EffectiveAt = now
		o.Stats.Counter("k8s.resizes_completed").Inc()
		o.resizeSpan.End(now, obs.I("to", int64(o.targetCores)), obs.S("mode", "rolling"))
		o.resizeSpan = obs.Span{}
		return
	}
	if !o.started {
		o.started = true
		o.emit(now, "k8s.resize-started",
			obs.I("to", int64(o.targetCores)), obs.I("pods", int64(len(o.queue))))
	}
	p := o.queue[0]
	o.queue = o.queue[1:]

	// Restarting the primary forces a failover to an updated secondary
	// first — the single, final failover the paper's ordering is
	// designed to guarantee.
	if p.Role == RolePrimary {
		if s := o.pickFailoverTarget(); s != nil {
			p.Role = RoleSecondary
			s.Role = RolePrimary
			o.FailoverCount++
			o.Stats.Counter("k8s.failovers").Inc()
			o.emit(now, "k8s.failover", obs.S("from", p.Name), obs.S("to", s.Name))
			if o.OnFailover != nil {
				o.OnFailover(p, s)
			}
		}
	}

	o.Cluster.Evict(p)
	o.emit(now, "k8s.restart-disruption",
		obs.S("pod", p.Name), obs.S("role", string(p.Role)), obs.I("until", now+o.RestartSeconds))
	if o.OnPodDown != nil {
		o.OnPodDown(p)
	}
	p.Phase = PhaseRestarting
	p.Spec = NewGuaranteedSpec(o.targetCores, o.Set.MemGiBPerPod)
	p.RestartingUntil = now + o.RestartSeconds
	if d := o.Faults.RestartStuck(p.Name, now); d > 0 {
		p.RestartingUntil += d
	}
	o.attempt = 1
	o.attemptDeadline = now + o.attemptTimeout()
	o.inFlight = p
	o.emit(now, "k8s.rolling-phase",
		obs.S("pod", p.Name), obs.S("phase", "restarting"), obs.I("cores", int64(o.targetCores)))
}

// retryOrAbort handles a failed restart attempt for the in-flight pod:
// relaunch it after an exponentially backed-off delay, or — once the
// attempt budget is spent — abort the whole update.
func (o *Operator) retryOrAbort(now int64, p *Pod, reason string) {
	if o.attempt >= o.maxRestartAttempts() {
		o.abortResize(now, reason)
		return
	}
	base := o.BackoffBaseSeconds
	if base <= 0 {
		base = defaultBackoffBaseSeconds
	}
	delay := base << uint(o.attempt-1) // 1×, 2×, 4×, …
	o.attempt++
	o.RestartRetries++
	o.Stats.Counter("k8s.restart_retries").Inc()
	p.RestartingUntil = now + delay + o.RestartSeconds
	// The fresh attempt can get stuck too (independent draw).
	if d := o.Faults.RestartStuck(p.Name, now); d > 0 {
		p.RestartingUntil += d
	}
	o.attemptDeadline = now + delay + o.attemptTimeout()
	o.emit(now, "k8s.restart-retry",
		obs.S("pod", p.Name), obs.S("reason", reason),
		obs.I("attempt", int64(o.attempt)), obs.I("backoff", delay),
		obs.I("until", p.RestartingUntil))
}

// abortResize gives up on the rolling update, leaving every pod on one
// consistent spec — never a split set. The rollback direction is chosen
// so that every patch is a *shrink*, which always fits: a scale-up abort
// reverts the already-updated pods to the old limit; a scale-down abort
// rolls the not-yet-updated pods forward to the new one. The in-flight
// pod is relaunched at the final spec through the recovery path; until
// it lands, new resizes are rejected (and audited) rather than queued.
func (o *Operator) abortResize(now int64, reason string) {
	final := o.fromCores
	if o.targetCores < o.fromCores {
		final = o.targetCores
	}
	spec := NewGuaranteedSpec(final, o.Set.MemGiBPerPod)
	for _, p := range o.Set.Pods {
		if p == o.inFlight || int(p.Spec.Requests.CPUCores) == final {
			continue
		}
		// Shrink by construction; an error would mean the invariant
		// broke, so surface it in the audit stream instead of splitting
		// the set silently.
		if err := o.Cluster.ResizeInPlace(p, spec); err != nil {
			o.Stats.Counter("k8s.rollback_errors").Inc()
			o.emit(now, "k8s.rolling-phase",
				obs.S("pod", p.Name), obs.S("phase", "rollback-error"), obs.S("reason", err.Error()))
			continue
		}
		o.emit(now, "k8s.rolling-phase",
			obs.S("pod", p.Name), obs.S("phase", "rolled-back"), obs.I("cores", int64(final)))
	}
	if p := o.inFlight; p != nil {
		// Kill the failed attempt and relaunch at the final spec; the
		// recovery path (top of Tick) completes it outside the update.
		p.Spec = spec
		p.RestartingUntil = now + o.RestartSeconds
		o.recovering = p
	}
	o.inFlight = nil
	o.queue = nil
	o.updating = false
	o.started = false
	o.attempt = 0
	o.ResizesAborted++
	o.Stats.Counter("k8s.resizes_aborted").Inc()
	o.emit(now, "k8s.resize-aborted",
		obs.I("from", int64(o.fromCores)), obs.I("to", int64(o.targetCores)),
		obs.I("final", int64(final)), obs.S("reason", reason))
	// Drop the open span: aborted updates must not emit resize-completed.
	o.resizeSpan = obs.Span{}
}

// pickFailoverTarget chooses the running secondary with the lowest
// ordinal (deterministic; already resized at this point in the queue).
func (o *Operator) pickFailoverTarget() *Pod {
	var best *Pod
	for _, p := range o.Set.Pods {
		if p.Running() && p.Role == RoleSecondary {
			if best == nil || p.Ordinal < best.Ordinal {
				best = p
			}
		}
	}
	return best
}
