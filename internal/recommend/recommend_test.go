package recommend

import (
	"testing"

	"caasper/internal/core"
	"caasper/internal/forecast"
)

var (
	_ Recommender = (*CaaSPERReactive)(nil)
	_ Recommender = (*CaaSPERProactive)(nil)
)

func TestNewCaaSPERReactiveValidation(t *testing.T) {
	if _, err := NewCaaSPERReactive(core.DefaultConfig(16), 0); err == nil {
		t.Error("zero window should error")
	}
	if _, err := NewCaaSPERReactive(core.Config{}, 40); err == nil {
		t.Error("invalid config should error")
	}
}

func TestCaaSPERReactiveScalesUpOnCappedUsage(t *testing.T) {
	r, err := NewCaaSPERReactive(core.DefaultConfig(16), 40)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "caasper-reactive" {
		t.Errorf("name = %q", r.Name())
	}
	for i := 0; i < 60; i++ {
		r.Observe(i, 3) // pinned at a 3-core cap
	}
	got := r.Recommend(3)
	if got <= 3 {
		t.Errorf("capped usage should scale up, got %d", got)
	}
	if r.LastDecision.Branch != core.BranchScaleUp {
		t.Errorf("branch = %s", r.LastDecision.Branch)
	}
}

func TestCaaSPERReactiveUsesOnlyWindowTail(t *testing.T) {
	r, err := NewCaaSPERReactive(core.DefaultConfig(16), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Old high usage followed by a long low period: with a 10-sample
	// window the old peak is out of scope and scale-down fires.
	for i := 0; i < 50; i++ {
		r.Observe(i, 11)
	}
	for i := 50; i < 100; i++ {
		r.Observe(i, 2)
	}
	got := r.Recommend(12)
	if got >= 12 {
		t.Errorf("stale peak outside window should allow scale-down, got %d", got)
	}
}

func TestCaaSPERReactiveHoldOnNoData(t *testing.T) {
	r, _ := NewCaaSPERReactive(core.DefaultConfig(16), 40)
	if got := r.Recommend(5); got != 5 {
		t.Errorf("no observations should hold, got %d", got)
	}
}

func TestCaaSPERReactiveReset(t *testing.T) {
	r, _ := NewCaaSPERReactive(core.DefaultConfig(16), 40)
	for i := 0; i < 50; i++ {
		r.Observe(i, 7.8)
	}
	_ = r.Recommend(8)
	r.Reset()
	if got := r.Recommend(8); got != 8 {
		t.Errorf("after reset should hold, got %d", got)
	}
	if r.LastDecision.Explanation != "" {
		t.Error("reset should clear LastDecision")
	}
}

func TestNewCaaSPERProactiveValidation(t *testing.T) {
	if _, err := NewCaaSPERProactive(core.Config{}, nil, 40, 20, 0); err == nil {
		t.Error("invalid config should error")
	}
	if _, err := NewCaaSPERProactive(core.DefaultConfig(16), nil, 0, 20, 0); err == nil {
		t.Error("zero window should error")
	}
}

func TestCaaSPERProactiveWarmupReactive(t *testing.T) {
	p, err := NewCaaSPERProactive(core.DefaultConfig(16), &forecast.SeasonalNaive{Season: 1440}, 40, 60, 1440)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "caasper-proactive" {
		t.Errorf("name = %q", p.Name())
	}
	for i := 0; i < 100; i++ {
		p.Observe(i, 3)
	}
	_ = p.Recommend(3)
	if p.LastUsedForecast {
		t.Error("warm-up period must be reactive")
	}
}

func TestCaaSPERProactiveAnticipatesSeasonalSpike(t *testing.T) {
	day := 1440
	p, err := NewCaaSPERProactive(core.DefaultConfig(16), &forecast.SeasonalNaive{Season: day}, 40, 30, day)
	if err != nil {
		t.Fatal(err)
	}
	minute := 0
	observe := func(v float64, n int) {
		for i := 0; i < n; i++ {
			p.Observe(minute, v)
			minute++
		}
	}
	// Day 1: low, spike at minute 700, low again.
	observe(2, 700)
	observe(10, 60)
	observe(2, day-760)
	// Day 2 up to just before the spike.
	observe(2, 690)

	got := p.Recommend(3)
	if !p.LastUsedForecast {
		t.Fatal("forecast should be active after a full season")
	}
	if got <= 3 {
		t.Errorf("proactive should pre-scale for the seasonal spike, got %d", got)
	}
	p.Reset()
	if got := p.Recommend(3); got != 3 {
		t.Errorf("after reset should hold, got %d", got)
	}
}
