package experiments

import (
	"strings"
	"testing"
)

func TestMotivationHorizontalShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("live-loop experiment")
	}
	res, err := MotivationHorizontal(1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §1/§3.1 argument, quantified: horizontal scaling
	// barely helps a write-heavy single-primary workload...
	if res.HorizontalThroughputGain > 1.25 {
		t.Errorf("horizontal gain = %v, should stay marginal (writes can't spread)",
			res.HorizontalThroughputGain)
	}
	// ...while vertical scaling recovers most of the lost throughput.
	if res.VerticalThroughputGain < 1.5 {
		t.Errorf("vertical gain = %v, want a large recovery", res.VerticalThroughputGain)
	}
	if res.VerticalThroughputGain <= res.HorizontalThroughputGain {
		t.Error("vertical must beat horizontal on a write-heavy workload")
	}
	// Horizontal still pays for its extra replicas.
	if res.Horizontal.BilledCorePeriods <= res.Fixed.BilledCorePeriods {
		t.Error("added replicas must show up on the bill")
	}
	// The vertical run relieves primary throttling dramatically.
	if res.Vertical.SumInsufficient > res.Horizontal.SumInsufficient/2 {
		t.Errorf("vertical insufficient %v vs horizontal %v",
			res.Vertical.SumInsufficient, res.Horizontal.SumInsufficient)
	}
	if !strings.Contains(res.Report, "horizontal") {
		t.Error("report missing")
	}
}
