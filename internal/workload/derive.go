package workload

import "caasper/internal/trace"

// DeriveRAM synthesises a per-minute RAM demand trace (GB) from a CPU
// demand trace: an affine load component (baseGB + gbPerCore × cpu)
// under a sticky decay, because resident memory follows load up quickly
// (working sets, connection buffers) but drains slowly (page cache,
// allocator retention). Deterministic — no randomness — so the derived
// trace is byte-identical across runs and worker counts.
func DeriveRAM(tr *trace.Trace, baseGB, gbPerCore float64) *trace.Trace {
	const decay = 0.995 // ~2.3h half-life of the resident high-water mark
	vals := make([]float64, tr.Len())
	prev := baseGB
	for i := range vals {
		r := baseGB + gbPerCore*tr.At(i)
		if sticky := prev * decay; sticky > r {
			r = sticky
		}
		vals[i] = r
		prev = r
	}
	return trace.New(tr.Name+"-ram", tr.Interval, vals)
}

// DeriveDisk synthesises a per-minute disk usage trace (GB) from a CPU
// demand trace: a monotone accumulation of baseGB plus gbPerCoreHour of
// writes per core-hour of work — the WAL/compaction-shaped growth that
// makes disk a grow-only dimension. Deterministic.
func DeriveDisk(tr *trace.Trace, baseGB, gbPerCoreHour float64) *trace.Trace {
	vals := make([]float64, tr.Len())
	acc := baseGB
	for i := range vals {
		acc += tr.At(i) / 60 * gbPerCoreHour
		vals[i] = acc
	}
	return trace.New(tr.Name+"-disk", tr.Interval, vals)
}
