#!/bin/sh
# Benchmark capture: runs the hot-path benchmarks and writes the results
# as machine-readable JSON to BENCH_sim.json (array of {name, ns_op,
# allocs_op, bytes_op}), so perf regressions are diffable across commits.
#
#   scripts/bench.sh                # default filter + count
#   BENCH_FILTER=BenchmarkDecide scripts/bench.sh
#   BENCH_COUNT=5 scripts/bench.sh  # more samples (go test -count semantics
#                                   # via -benchtime; last sample wins here)
set -eu

cd "$(dirname "$0")/.."

FILTER="${BENCH_FILTER:-BenchmarkDecide|BenchmarkBuildCurve|BenchmarkSimulateWorkday|BenchmarkRecommenderMonthTrace|BenchmarkFleetTick|BenchmarkFleetWeek1k|BenchmarkFleetMonth100k\$|BenchmarkRandomSearch\$|BenchmarkServeIngest\$}"
BENCHTIME="${BENCH_BENCHTIME:-1s}"
OUT="${BENCH_OUT:-BENCH_sim.json}"

echo "==> go test -bench '$FILTER' -benchtime $BENCHTIME -benchmem ."
RAW="$(go test -run xxx -bench "$FILTER" -benchtime "$BENCHTIME" -benchmem . | tee /dev/stderr)"

# A benchmark line looks like:
#   BenchmarkSimulateWorkday-8   5000   207482 ns/op   55562 B/op   387 allocs/op
printf '%s\n' "$RAW" | awk '
BEGIN { print "["; n = 0 }
$1 ~ /^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (n++) print ","
    printf "  {\"name\": \"%s\", \"ns_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_op\": %s", allocs
    printf "}"
}
END { if (n) print ""; print "]" }
' > "$OUT"

echo "==> wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
