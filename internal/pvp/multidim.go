package pvp

import (
	"errors"
	"fmt"
	"sort"

	"caasper/internal/stats"
)

// This file implements the *general* Doppler formulation of Eq. 1 (paper
// §4.1) that CaaSPER's CPU-only curve was refactored from:
//
//	P_n(SKU_i) = P(r_CPU > R_CPU_i ∪ r_RAM > R_RAM_i ∪ ... ∪ r_IOPS > R_IOPS_i)
//
// i.e. the empirical probability that *any* resource dimension of customer
// n's usage exceeds SKU i's capacity in that dimension. Doppler uses it to
// draw price-vs-performance curves over a catalog of cloud SKUs during
// migration; the single-resource Curve in curve.go is the special case
// with one dimension and a ladder of whole-core SKUs.
//
// The paper notes that dimensions may need small transformations (e.g. IO
// latency is inverted so that "bigger is better" holds uniformly); callers
// apply such transforms before constructing samples.

// SKU describes one catalog entry with capacities per dimension and a
// monthly price. Dimension names are free-form but must be consistent
// across the catalog and the usage samples ("cpu", "ram_gib", "iops", ...).
type SKU struct {
	// Name identifies the SKU (e.g. "GP_Gen5_8").
	Name string
	// Capacity maps dimension name → maximum sustained capacity.
	Capacity map[string]float64
	// MonthlyPrice is the SKU's price.
	MonthlyPrice float64
}

// UsageSample is one multi-dimensional resource observation.
type UsageSample map[string]float64

// MultiCurve is a Doppler price-vs-performance curve over a SKU catalog.
type MultiCurve struct {
	// Points are ordered by ascending price.
	Points []MultiPoint
}

// MultiPoint is one SKU's position on the curve.
type MultiPoint struct {
	SKU SKU
	// Performance is 1 − P(throttling) under Eq. 1.
	Performance float64
}

// BuildMultiCurve evaluates Eq. 1 for every SKU against the usage
// samples. Samples missing a dimension treat it as zero usage (cannot
// exceed); SKUs missing a dimension present in a sample treat capacity as
// zero (always exceeded) — a catalog mistake that surfaces as zero
// performance rather than silently passing.
func BuildMultiCurve(samples []UsageSample, catalog []SKU) (*MultiCurve, error) {
	if len(samples) == 0 {
		return nil, errors.New("pvp: no usage samples")
	}
	if len(catalog) == 0 {
		return nil, errors.New("pvp: empty SKU catalog")
	}
	for _, sku := range catalog {
		if len(sku.Capacity) == 0 {
			return nil, fmt.Errorf("pvp: SKU %q has no capacities", sku.Name)
		}
	}
	points := make([]MultiPoint, 0, len(catalog))
	for _, sku := range catalog {
		var exceed int
		for _, s := range samples {
			if sampleExceeds(s, sku) {
				exceed++
			}
		}
		p := float64(exceed) / float64(len(samples))
		points = append(points, MultiPoint{SKU: sku, Performance: 1 - p})
	}
	sort.SliceStable(points, func(i, j int) bool {
		if points[i].SKU.MonthlyPrice != points[j].SKU.MonthlyPrice {
			return points[i].SKU.MonthlyPrice < points[j].SKU.MonthlyPrice
		}
		return points[i].SKU.Name < points[j].SKU.Name
	})
	return &MultiCurve{Points: points}, nil
}

// sampleExceeds implements the union of Eq. 1 for one sample: true when
// any dimension's usage exceeds the SKU's capacity (with the same "at the
// cap counts as throttled" tolerance as the CPU-only curve).
func sampleExceeds(s UsageSample, sku SKU) bool {
	const eps = 0.02
	for dim, usage := range s {
		cap := sku.Capacity[dim] // missing dimension → 0 → exceeded
		if usage > cap*(1-eps) {
			return true
		}
	}
	return false
}

// Recommend returns the cheapest SKU whose performance meets perfTarget,
// mirroring Doppler's migration recommendation. It returns an error when
// no SKU qualifies (the customer needs a bigger catalog).
func (c *MultiCurve) Recommend(perfTarget float64) (SKU, error) {
	perfTarget = stats.Clamp(perfTarget, 0, 1)
	for _, p := range c.Points {
		if p.Performance >= perfTarget {
			return p.SKU, nil
		}
	}
	return SKU{}, fmt.Errorf("pvp: no SKU reaches performance %.2f (best %.2f)",
		perfTarget, c.bestPerformance())
}

func (c *MultiCurve) bestPerformance() float64 {
	best := 0.0
	for _, p := range c.Points {
		if p.Performance > best {
			best = p.Performance
		}
	}
	return best
}

// Frontier returns the price-ascending points that strictly improve
// performance — the curve a Doppler user is actually shown (dominated
// SKUs carry no information).
func (c *MultiCurve) Frontier() []MultiPoint {
	var out []MultiPoint
	best := -1.0
	for _, p := range c.Points {
		if p.Performance > best {
			out = append(out, p)
			best = p.Performance
		}
	}
	return out
}

// CPUOnlyCatalog builds the whole-core SKU ladder that reduces the
// multi-dimensional formulation to the CaaSPER special case — used in
// tests to verify the two implementations agree.
func CPUOnlyCatalog(r SKURange) []SKU {
	price := r.PricePerCore
	if price <= 0 {
		price = 1
	}
	out := make([]SKU, 0, r.Count())
	for cores := r.MinCores; cores <= r.MaxCores; cores++ {
		out = append(out, SKU{
			Name:         fmt.Sprintf("cpu-%d", cores),
			Capacity:     map[string]float64{"cpu": float64(cores)},
			MonthlyPrice: float64(cores) * price,
		})
	}
	return out
}
