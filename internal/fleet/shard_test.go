package fleet

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"caasper/internal/core"
	"caasper/internal/errs"
	"caasper/internal/faults"
	"caasper/internal/k8s"
	"caasper/internal/obs"
)

// placedTenant builds a bare tenant whose pods sit on the named nodes —
// enough structure for shardPartition, which reads only set.Pods.
func placedTenant(nodes ...string) *tenant {
	set := &k8s.StatefulSet{}
	for _, n := range nodes {
		set.Pods = append(set.Pods, &k8s.Pod{NodeName: n})
	}
	return &tenant{set: set}
}

// TestShardPartition pins the partition law directly: connected
// components of the tenant–node placement graph, groups ordered by
// smallest member, members ascending within a group.
func TestShardPartition(t *testing.T) {
	cases := []struct {
		name        string
		ts          []*tenant
		wantIdxs    []int32
		wantOffsets []int32
	}{
		{
			name: "disjoint singletons",
			ts: []*tenant{
				placedTenant("n1"), placedTenant("n2"), placedTenant("n3"),
			},
			wantIdxs:    []int32{0, 1, 2},
			wantOffsets: []int32{0, 1, 2, 3},
		},
		{
			name: "transitive chain via shared nodes",
			// t0–n1–t2 and t2–n3–t3 connect {0,2,3}; t1 stays alone.
			ts: []*tenant{
				placedTenant("n1"),
				placedTenant("n2"),
				placedTenant("n1", "n3"),
				placedTenant("n3"),
				placedTenant("n4"),
			},
			wantIdxs:    []int32{0, 2, 3, 1, 4},
			wantOffsets: []int32{0, 3, 4, 5},
		},
		{
			name: "one clique",
			ts: []*tenant{
				placedTenant("n1"), placedTenant("n1"), placedTenant("n1"),
			},
			wantIdxs:    []int32{0, 1, 2},
			wantOffsets: []int32{0, 3},
		},
		{
			name: "unplaced pods are singletons",
			// An empty NodeName (pod not yet scheduled) must not weld
			// every such tenant into one false mega-shard.
			ts: []*tenant{
				placedTenant(""), placedTenant(""), placedTenant("n1"),
			},
			wantIdxs:    []int32{0, 1, 2},
			wantOffsets: []int32{0, 1, 2, 3},
		},
		{
			name: "multi-replica spread joins groups",
			// t1's replicas land on both n1 and n2, merging t0 and t2.
			ts: []*tenant{
				placedTenant("n1"),
				placedTenant("n1", "n2"),
				placedTenant("n2"),
			},
			wantIdxs:    []int32{0, 1, 2},
			wantOffsets: []int32{0, 3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			idxs, offsets := shardPartition(tc.ts)
			if !reflect.DeepEqual(idxs, tc.wantIdxs) || !reflect.DeepEqual(offsets, tc.wantOffsets) {
				t.Errorf("shardPartition = %v %v, want %v %v", idxs, offsets, tc.wantIdxs, tc.wantOffsets)
			}
		})
	}
}

// runSharded executes one events-engine run with the given sharding mode,
// capturing the result and the encoded event stream.
func runSharded(t *testing.T, specs []TenantSpec, opts Options, sharding string, workers int) (*Result, string) {
	t.Helper()
	mem := obs.NewMemorySink()
	opts.Engine = EngineEvents
	opts.Sharding = sharding
	opts.Workers = workers
	opts.Events = mem
	res, err := Run(specs, opts)
	if err != nil {
		t.Fatalf("sharding=%s workers=%d: %v", sharding, workers, err)
	}
	return res, encodeStream(mem)
}

// TestShardedEquivalenceChaos16 is the tentpole contract for the sharded
// engine on the scripts/fleet.sh chaos configuration: the auto-sharded
// run must reproduce both the single-shard event loop and the stepped
// reference bit for bit — results and NDJSON stream — at every worker
// count.
func TestShardedEquivalenceChaos16(t *testing.T) {
	opts := func() Options {
		o := DefaultOptions()
		o.Minutes = 240
		var err error
		o.FaultSpec, err = faults.ParseSpec("restart-fail:p=0.2,metrics-gap:p=0.05,sched-pressure:p=0.5:dur=60:cores=4")
		if err != nil {
			t.Fatal(err)
		}
		o.FaultSeed = 7
		return withSmallCluster(o)
	}

	stepped, steppedStream := runEngine(t, mixedFleet(t, 16), opts(), EngineStepped, 1)
	base, baseStream := runSharded(t, mixedFleet(t, 16), opts(), ShardingOff, 1)
	if !reflect.DeepEqual(stepped, base) {
		t.Fatalf("single-shard events diverged from stepped:\n%s\nvs\n%s", stepped.Summary(), base.Summary())
	}
	if steppedStream != baseStream {
		t.Fatal("single-shard event stream diverged from stepped")
	}
	for _, w := range []int{1, 4, 8} {
		res, stream := runSharded(t, mixedFleet(t, 16), opts(), ShardingAuto, w)
		if !reflect.DeepEqual(base, res) {
			t.Errorf("sharding=auto workers=%d: result diverged:\n%s\nvs\n%s", w, base.Summary(), res.Summary())
		}
		if stream != baseStream {
			t.Errorf("sharding=auto workers=%d: event stream diverged", w)
		}
	}
}

// TestShardedEquivalenceRandomized64 runs the 64-tenant fuzz fleet (16
// wide nodes → many genuine multi-tenant shard groups) through the
// sharded engine at several worker counts, against both the single-shard
// event loop and the stepped reference.
func TestShardedEquivalenceRandomized64(t *testing.T) {
	stepped, steppedStream := runEngine(t, randomized64Specs(t), randomized64Opts(t), EngineStepped, 1)
	base, baseStream := runSharded(t, randomized64Specs(t), randomized64Opts(t), ShardingOff, 1)
	if !reflect.DeepEqual(stepped, base) {
		t.Fatalf("single-shard events diverged from stepped:\n%s\nvs\n%s", stepped.Summary(), base.Summary())
	}
	if steppedStream != baseStream {
		t.Fatal("single-shard event stream diverged from stepped")
	}
	for _, w := range []int{1, 4, 8} {
		res, stream := runSharded(t, randomized64Specs(t), randomized64Opts(t), ShardingAuto, w)
		if !reflect.DeepEqual(base, res) {
			t.Errorf("sharding=auto workers=%d: result diverged:\n%s\nvs\n%s", w, base.Summary(), res.Summary())
		}
		if stream != baseStream {
			t.Errorf("sharding=auto workers=%d: event stream diverged", w)
		}
	}
}

// TestShardingValidation: the two sharding modes (plus the empty
// default) validate; anything else is a config error.
func TestShardingValidation(t *testing.T) {
	for _, good := range []string{"", ShardingAuto, ShardingOff} {
		opts := DefaultOptions()
		opts.Sharding = good
		if err := opts.Validate(); err != nil {
			t.Errorf("Sharding=%q rejected: %v", good, err)
		}
	}
	opts := DefaultOptions()
	opts.Sharding = "sideways"
	err := opts.Validate()
	if err == nil {
		t.Fatal("sharding \"sideways\" accepted")
	}
	if !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("got %v, want ErrInvalidConfig", err)
	}
}

// TestEventsEngineMultiResourceRejection pins the guidance error for the
// one capability gap: multi-resource tenants need the stepped engine,
// and the rejection must say so (naming the engine and the workaround)
// while still unwrapping to ErrInvalidConfig. The same fleet on the
// stepped engine runs fine — proof the rejection is about the engine,
// not the config.
func TestEventsEngineMultiResourceRejection(t *testing.T) {
	mkSpecs := func() []TenantSpec {
		specs := mixedFleet(t, 4)
		specs[2].Resources = core.ResourceRange{
			Initial: core.Resources{CPUCores: 2, RAMGB: 4},
			Limits: core.Limits{
				Min: core.Resources{CPUCores: 1, RAMGB: 4},
				Max: core.Resources{CPUCores: 8, RAMGB: 16},
			},
		}
		return specs
	}
	opts := func(engine string) Options {
		o := DefaultOptions()
		o.Minutes = 60
		o.Engine = engine
		return withSmallCluster(o)
	}

	if _, err := Run(mkSpecs(), opts(EngineStepped)); err != nil {
		t.Fatalf("stepped engine rejected the multi-resource fleet: %v", err)
	}

	_, err := Run(mkSpecs(), opts(EngineEvents))
	if err == nil {
		t.Fatal("events engine accepted a multi-resource fleet")
	}
	if !errors.Is(err, errs.ErrInvalidConfig) {
		t.Errorf("error does not unwrap to ErrInvalidConfig: %v", err)
	}
	for _, want := range []string{`"events"`, "-engine stepped", "t02"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}
