package workload

import (
	"errors"
	"fmt"
	"time"

	"caasper/internal/trace"
)

// This file reimplements the idea behind Stitcher (paper §6.2, [72]):
// recreating a customer's CPU trace from public benchmarks instead of the
// customer's proprietary queries and data. Given a target CPU envelope,
// the stitcher splits it into fixed-length segments, picks for each
// segment the benchmark mix whose character best matches the segment
// (write-heavy OLTP for low/variable regions, analytic reads for heavy
// plateaus), and emits per-segment arrival rates that reproduce the
// envelope's CPU usage.

// StitchSegment is one benchmark segment of a stitched workload.
type StitchSegment struct {
	// Start is the segment's offset from workload start.
	Start time.Duration
	// Length is the segment duration.
	Length time.Duration
	// Mix is the benchmark mix chosen for the segment.
	Mix Mix
	// MixName names the source benchmark ("tpcc", "tpch", "ycsb", "oltp").
	MixName string
	// RatePerSec is the arrival rate reproducing the segment's mean CPU.
	RatePerSec float64
	// TargetCores is the segment's mean CPU in the source trace.
	TargetCores float64
}

// StitchedWorkload is a benchmark-recreated customer workload.
type StitchedWorkload struct {
	// Name labels the workload.
	Name string
	// Segments are the consecutive benchmark segments.
	Segments []StitchSegment
	// Source is the trace the stitcher replicated.
	Source *trace.Trace
}

// Stitch recreates the target trace from benchmark mixes using segments of
// the given length. It mirrors Stitcher's matching step with a simple,
// interpretable rule set:
//
//   - segments with mean CPU ≥ heavyThreshold cores and low variability
//     are mapped to TPC-H analytic batches;
//   - highly variable segments are mapped to YCSB (cheap point ops allow
//     the fastest rate modulation);
//   - everything else is mapped to the mixed TPC-C/YCSB OLTP blend.
func Stitch(target *trace.Trace, segment time.Duration) (*StitchedWorkload, error) {
	if target == nil || target.Len() == 0 {
		return nil, errors.New("workload: empty stitch target")
	}
	if segment < target.Interval {
		return nil, fmt.Errorf("workload: segment %v shorter than trace interval %v", segment, target.Interval)
	}
	perSeg := int(segment / target.Interval)
	const heavyThreshold = 4.0

	var segs []StitchSegment
	for off := 0; off < target.Len(); off += perSeg {
		window := target.Window(off, off+perSeg)
		mean, cv := meanAndCV(window)
		var mix Mix
		var name string
		switch {
		case mean >= heavyThreshold && cv < 0.25:
			mix, name = TPCHMix(), "tpch"
		case cv >= 0.5:
			mix, name = YCSBMix(), "ycsb"
		default:
			mix, name = MixedOLTP(), "oltp"
		}
		rate, err := RateForCores(mix, mean)
		if err != nil {
			return nil, err
		}
		segs = append(segs, StitchSegment{
			Start:       time.Duration(off) * target.Interval,
			Length:      time.Duration(len(window)) * target.Interval,
			Mix:         mix,
			MixName:     name,
			RatePerSec:  rate,
			TargetCores: mean,
		})
	}
	return &StitchedWorkload{Name: target.Name + "-stitched", Segments: segs, Source: target}, nil
}

func meanAndCV(xs []float64) (mean, cv float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	mean = sum / float64(len(xs))
	if mean == 0 {
		return 0, 0
	}
	var ss float64
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	sd := 0.0
	if len(xs) > 1 {
		sd = sqrt(ss / float64(len(xs)-1))
	}
	return mean, sd / mean
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations; avoids importing math for one call and is exact
	// enough for a coefficient of variation.
	z := x
	for i := 0; i < 24; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Schedule flattens the stitched workload back into a LoadSchedule whose
// rate follows the per-segment stitched rates. The mix reported on the
// schedule is the mix of the first segment; per-segment mixes remain
// available on Segments for transaction-level replay.
func (sw *StitchedWorkload) Schedule() *LoadSchedule {
	segs := sw.Segments
	rate := func(m float64) float64 {
		t := time.Duration(m * float64(time.Minute))
		for _, s := range segs {
			if t >= s.Start && t < s.Start+s.Length {
				return s.RatePerSec
			}
		}
		if len(segs) > 0 && t >= segs[len(segs)-1].Start {
			return segs[len(segs)-1].RatePerSec
		}
		return 0
	}
	mix := MixedOLTP()
	if len(segs) > 0 {
		mix = segs[0].Mix
	}
	phases := make([]MixPhase, 0, len(segs))
	for _, s := range segs {
		phases = append(phases, MixPhase{Mix: s.Mix, Minutes: s.Length.Minutes()})
	}
	return &LoadSchedule{
		Name:     sw.Name,
		Mix:      mix,
		Phases:   phases,
		Rate:     rate,
		Duration: sw.Source.Duration(),
	}
}

// RecreatedTrace renders the CPU demand implied by the stitched segments —
// the synthetic trace that stands in for the customer's. Fidelity is
// checked in tests: the recreated trace's per-segment means match the
// source trace's.
func (sw *StitchedWorkload) RecreatedTrace() *trace.Trace {
	n := sw.Source.Len()
	values := make([]float64, n)
	for _, s := range sw.Segments {
		mean := s.Mix.MeanCPUSeconds()
		from := int(s.Start / sw.Source.Interval)
		to := from + int(s.Length/sw.Source.Interval)
		for i := from; i < to && i < n; i++ {
			values[i] = s.RatePerSec * mean
		}
	}
	return trace.New(sw.Name, sw.Source.Interval, values)
}
