// Package serve turns the batch-replay recommenders into a long-running
// recommender-as-a-service: the paper frames CaaSPER as a control plane
// that continuously resizes live customer databases (Figure 1), and this
// is the missing online half — tenants POST metric samples over
// HTTP/NDJSON, decisions stream back with lazily materialised
// explanations, and an admin surface (shaped after the Zerops scaling
// API: per-service min/max resource ranges) retunes ranges and hot-swaps
// policies without a restart.
//
// The state model is a sharded in-memory tenant map: tenants hash to one
// of a fixed number of shards, each shard owns a mutex guarding map
// membership plus a bounded ingest queue drained by one worker
// goroutine, and each tenant carries its own lock for its mutable state. A tenant reuses
// the same machinery the replay engines do — a window.Ring observation
// window and a core.Scratch decision memo inside the recommend adapters —
// so a serve decision is bit-identical to the decision the simulator
// would have made on the same sample stream.
//
// Durability is a versioned NDJSON checkpoint (Server.Snapshot): ring
// windows, totals and scratch memos serialise through
// recommend.StateSnapshotter, and a server restarted from its checkpoint
// resumes mid-window with bit-identical subsequent decisions — the
// round-trip equality test in snapshot_test.go pins that contract.
package serve

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"sync"
	"time"

	"caasper/internal/core"
	"caasper/internal/errs"
	"caasper/internal/obs"
	"caasper/internal/recommend"
)

// Options configures a Server. The zero value serves with the defaults
// below.
type Options struct {
	// Shards is the tenant-map shard count (default 16). More shards
	// mean more ingest parallelism and finer-grained locking.
	Shards int
	// QueueDepth bounds each shard's pending ingest batches; a full
	// queue answers 429 with Retry-After (default 256).
	QueueDepth int
	// DecisionEveryMinutes is the decision cadence in samples: a tenant
	// decides after every DecisionEveryMinutes-th sample (default 10,
	// the paper's five-to-ten-minute decision interval).
	DecisionEveryMinutes int
	// DecisionLogSize bounds the per-tenant decision ring served by the
	// decision stream (default 512).
	DecisionLogSize int
	// SnapshotPath, when set, is where Close and the snapshot endpoint
	// checkpoint the tenant state.
	SnapshotPath string
	// Events, when enabled, receives the decision-audit stream
	// ("core.decision" via each tenant's scratch) plus "serve.span"
	// request spans. Concurrent shard workers share it through an
	// internal lock.
	Events obs.Sink
	// Metrics, when non-nil, receives the serve.* counters and latency
	// histograms (also served at GET /metrics).
	Metrics *obs.Registry
	// Log is the server's logger (default: quiet stderr logger).
	Log *obs.Logger
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Shards <= 0 {
		out.Shards = 16
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 256
	}
	if out.DecisionEveryMinutes <= 0 {
		out.DecisionEveryMinutes = 10
	}
	if out.DecisionLogSize <= 0 {
		out.DecisionLogSize = 512
	}
	if out.Events == nil {
		out.Events = obs.Discard
	}
	if out.Log == nil {
		out.Log = obs.NewLogger(nil, 0)
	}
	return out
}

// TenantConfig is a tenant's registration body: which policy decides for
// it and over which core range. Mirroring the Zerops scaling-API shape,
// the min/max range is the admin-tunable contract and the autoscaler
// moves freely inside it.
type TenantConfig struct {
	// Policy is the recommender name (recommend.Names).
	Policy string `json:"policy"`
	// MinCores / MaxCores bound the allocation (1 ≤ Min ≤ Max).
	MinCores int `json:"min_cores"`
	MaxCores int `json:"max_cores"`
	// InitialCores is the starting allocation (default MinCores).
	InitialCores int `json:"initial_cores,omitempty"`
	// Window / Horizon / Season tune the CaaSPER policies (defaults 40 /
	// 60 / 1440, as everywhere else).
	Window  int `json:"window,omitempty"`
	Horizon int `json:"horizon,omitempty"`
	Season  int `json:"season,omitempty"`

	// Multi-resource bounds (all omitted for CPU-only tenants, keeping
	// their JSON — and the v1 snapshot shape — byte-identical).

	// MinRAMGB / MaxRAMGB bound the RAM grant in GB; a non-zero
	// MaxRAMGB enables RAM scaling under the dual-threshold policy.
	MinRAMGB int `json:"min_ram_gb,omitempty"`
	MaxRAMGB int `json:"max_ram_gb,omitempty"`
	// InitialRAMGB is the starting grant (default MinRAMGB).
	InitialRAMGB int `json:"initial_ram_gb,omitempty"`
	// DiskGB is the initial volume size in GB; a non-zero value enables
	// grow-only volume sizing, bounded by MaxDiskGB (0 = unbounded).
	DiskGB    int `json:"disk_gb,omitempty"`
	MaxDiskGB int `json:"max_disk_gb,omitempty"`
	// MaxReplicas enables horizontal overflow for stateless tiers: a
	// replica is recommended when the CPU target pins at MaxCores under
	// high observed usage (0 = vertical only).
	MaxReplicas int `json:"max_replicas,omitempty"`
}

// multi reports whether the tenant manages any non-CPU dimension.
func (c *TenantConfig) multi() bool {
	return c.MaxRAMGB > 0 || c.DiskGB > 0 || c.MaxReplicas > 0
}

func (c *TenantConfig) normalize() error {
	if c.Policy == "" {
		c.Policy = "caasper"
	}
	if c.MinCores <= 0 {
		c.MinCores = 1
	}
	if c.MaxCores <= 0 {
		return fmt.Errorf("serve: max_cores is required: %w", errs.ErrInvalidConfig)
	}
	if c.MinCores > c.MaxCores {
		return fmt.Errorf("serve: min_cores %d > max_cores %d: %w", c.MinCores, c.MaxCores, errs.ErrInvalidConfig)
	}
	if c.InitialCores == 0 {
		c.InitialCores = c.MinCores
	}
	if c.InitialCores < c.MinCores || c.InitialCores > c.MaxCores {
		return fmt.Errorf("serve: initial_cores %d outside [%d, %d]: %w",
			c.InitialCores, c.MinCores, c.MaxCores, errs.ErrInvalidConfig)
	}
	if c.MaxRAMGB > 0 {
		if c.MinRAMGB <= 0 {
			c.MinRAMGB = 1
		}
		if c.MinRAMGB > c.MaxRAMGB {
			return fmt.Errorf("serve: min_ram_gb %d > max_ram_gb %d: %w", c.MinRAMGB, c.MaxRAMGB, errs.ErrInvalidConfig)
		}
		if c.InitialRAMGB == 0 {
			c.InitialRAMGB = c.MinRAMGB
		}
		if c.InitialRAMGB < c.MinRAMGB || c.InitialRAMGB > c.MaxRAMGB {
			return fmt.Errorf("serve: initial_ram_gb %d outside [%d, %d]: %w",
				c.InitialRAMGB, c.MinRAMGB, c.MaxRAMGB, errs.ErrInvalidConfig)
		}
	} else if c.MinRAMGB > 0 || c.InitialRAMGB > 0 {
		return fmt.Errorf("serve: RAM bounds need max_ram_gb: %w", errs.ErrInvalidConfig)
	}
	if c.DiskGB < 0 || c.MaxDiskGB < 0 {
		return fmt.Errorf("serve: negative disk bounds: %w", errs.ErrInvalidConfig)
	}
	if c.MaxDiskGB > 0 {
		if c.DiskGB == 0 {
			return fmt.Errorf("serve: max_disk_gb needs disk_gb: %w", errs.ErrInvalidConfig)
		}
		if c.DiskGB > c.MaxDiskGB {
			return fmt.Errorf("serve: disk_gb %d > max_disk_gb %d: %w", c.DiskGB, c.MaxDiskGB, errs.ErrInvalidConfig)
		}
	}
	if c.MaxReplicas < 0 {
		return fmt.Errorf("serve: negative max_replicas: %w", errs.ErrInvalidConfig)
	}
	return nil
}

// settings maps the tenant config onto the shared constructor knobs.
func (c *TenantConfig) settings() recommend.Settings {
	return recommend.Settings{
		MaxCores:     c.MaxCores,
		Window:       c.Window,
		Horizon:      c.Horizon,
		Season:       c.Season,
		ControlCores: c.InitialCores,
	}
}

// DecisionRecord is one decision as served by the decision stream. Field
// order is the NDJSON golden contract of scripts/serve.sh — append, never
// reorder. Explanation is only materialised (from the numeric fields)
// when the stream is asked for it.
type DecisionRecord struct {
	// Seq numbers the tenant's decisions from 1, monotone across
	// restarts (it is part of the snapshot).
	Seq int64 `json:"seq"`
	// Minute is the sample index the decision was made at.
	Minute int `json:"minute"`
	// Policy is the deciding recommender's name.
	Policy string `json:"policy"`
	// From / To are the allocation before and after (To is clamped to
	// the tenant's range).
	From int `json:"from"`
	To   int `json:"to"`
	// Branch, Slope, Skew, RawSF and Quantile carry the Algorithm 1
	// intermediate state when the policy exposes it
	// (recommend.DecisionReporter); baselines leave them zero.
	Branch   string  `json:"branch,omitempty"`
	Slope    float64 `json:"slope,omitempty"`
	Skew     float64 `json:"skew,omitempty"`
	RawSF    float64 `json:"raw_sf,omitempty"`
	Quantile float64 `json:"quantile,omitempty"`
	// Explanation is the lazily materialised prose (explain=1 only).
	Explanation string `json:"explanation,omitempty"`
	// RAMFrom/RAMTo, DiskTo and Replicas carry the non-CPU moves of a
	// multi-resource tenant. Appended after v1's fields and omitted for
	// CPU-only tenants, so their stream stays byte-identical.
	RAMFrom  int `json:"ram_from,omitempty"`
	RAMTo    int `json:"ram_to,omitempty"`
	DiskTo   int `json:"disk_to,omitempty"`
	Replicas int `json:"replicas,omitempty"`
}

// sample is one parsed metric sample. RAM and disk readings are optional
// (absent for CPU-only tenants) and only consulted when the tenant's
// config manages the dimension.
type sample struct {
	CPU    float64 `json:"cpu"`
	RAMGB  float64 `json:"ram_gb,omitempty"`
	DiskGB float64 `json:"disk_gb,omitempty"`
}

// batch is one enqueued ingest unit: samples for one tenant, stamped at
// enqueue time so the decision latency includes queueing. box, when
// non-nil, is the pooled backing the samples were parsed into; the drain
// worker returns it to samplesPool once apply is done with it.
type batch struct {
	t       *tenantState
	samples []sample
	box     *[]sample
	enq     time.Time
}

// Ingest scratch pools. A sample batch lives from the HTTP handler
// (parse) through the shard queue until apply() finishes with it, so
// both the scanner buffer and the parsed-samples slice can be recycled
// across requests instead of being reallocated per POST — a steady
// ingest stream then costs O(1) buffer allocations, not 64 KiB plus a
// grown slice each batch. The slices are boxed (*[]T) so a Put never
// allocates a fresh interface header for the slice value.
var (
	scanBufPool = sync.Pool{New: func() any { b := make([]byte, 64<<10); return &b }}
	samplesPool = sync.Pool{New: func() any { return new([]sample) }}
)

// tenantState is one tenant's live state. The shard mutex guards only
// map membership; every field below mu is guarded by mu itself, so a
// status read on one tenant never stalls behind a shard-mate's bulk
// apply. Lock order is always shard.mu → tenantState.mu, never the
// reverse.
type tenantState struct {
	id string

	mu  sync.Mutex
	cfg TenantConfig
	rec recommend.Recommender
	// cores is the current allocation (decisions move it inside
	// [MinCores, MaxCores]).
	cores int
	// minute counts samples observed — the tenant's logical clock.
	minute int
	// seq counts decisions made.
	seq int64
	// log is the bounded decision ring, oldest first.
	log []DecisionRecord

	// Multi-resource state, all zero for CPU-only tenants. ramGB/diskGB/
	// replicas are the current grants; the peaks accumulate between
	// decisions and reset at each tick.
	ramGB    int
	diskGB   int
	replicas int
	ramPeak  float64
	diskHigh float64
	cpuPeak  float64
}

// shard is one lock domain of the tenant map plus its ingest lane. Its
// mutex guards only the map — tenant state has its own lock — so map
// lookups stay O(1) even while the shard worker is deep in a bulk apply.
type shard struct {
	mu      sync.Mutex
	tenants map[string]*tenantState
	queue   chan batch
	wg      sync.WaitGroup
}

// Server is the recommender service. Create with New, expose via
// Handler, stop with Close.
type Server struct {
	opts   Options
	shards []*shard
	events *lockedSink
	mux    *http.ServeMux
	start  time.Time

	closeOnce sync.Once
	closeErr  error
}

// New builds a Server and starts its shard workers.
func New(opts Options) (*Server, error) {
	o := opts.withDefaults()
	s := &Server{
		opts:   o,
		shards: make([]*shard, o.Shards),
		events: &lockedSink{sink: o.Events},
		start:  time.Now(),
	}
	for i := range s.shards {
		sh := &shard{
			tenants: make(map[string]*tenantState),
			queue:   make(chan batch, o.QueueDepth),
		}
		sh.wg.Add(1)
		go s.drain(sh)
		s.shards[i] = sh
	}
	s.mux = s.routes()
	if o.SnapshotPath != "" {
		if err := s.restoreIfPresent(o.SnapshotPath); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// shardFor hashes a tenant ID onto its shard.
func (s *Server) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// drain is one shard's ingest worker: it applies queued batches until
// the queue closes.
func (s *Server) drain(sh *shard) {
	defer sh.wg.Done()
	for b := range sh.queue {
		s.apply(b)
		if b.box != nil {
			*b.box = b.samples[:0]
			samplesPool.Put(b.box)
		}
	}
}

// apply observes one batch's samples and fires any due decisions, under
// the tenant's own lock.
func (s *Server) apply(b batch) {
	t := b.t
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, smp := range b.samples {
		t.rec.Observe(t.minute, smp.CPU)
		if t.cfg.multi() {
			if smp.CPU > t.cpuPeak {
				t.cpuPeak = smp.CPU
			}
			if smp.RAMGB > t.ramPeak {
				t.ramPeak = smp.RAMGB
			}
			if smp.DiskGB > t.diskHigh {
				t.diskHigh = smp.DiskGB
			}
		}
		t.minute++
		if t.minute%s.opts.DecisionEveryMinutes == 0 {
			s.decide(t, b.enq)
		}
	}
	s.opts.Metrics.Counter("serve.samples").Add(int64(len(b.samples)))
}

// decide runs the tenant's policy once and appends the decision record.
// Caller holds the tenant lock.
func (s *Server) decide(t *tenantState, enq time.Time) {
	target := t.rec.Recommend(t.cores)
	if target < t.cfg.MinCores {
		target = t.cfg.MinCores
	}
	if target > t.cfg.MaxCores {
		target = t.cfg.MaxCores
	}
	t.seq++
	rec := DecisionRecord{
		Seq:    t.seq,
		Minute: t.minute - 1,
		Policy: t.cfg.Policy,
		From:   t.cores,
		To:     target,
	}
	if dr, ok := t.rec.(recommend.DecisionReporter); ok {
		d := dr.LastFullDecision()
		rec.Branch = string(d.Branch)
		rec.Slope = d.Slope
		rec.Skew = d.Skew
		rec.RawSF = d.RawSF
		rec.Quantile = d.Quantile
	}
	t.cores = target
	if t.cfg.multi() {
		s.decideMulti(t, &rec, target)
	}
	if len(t.log) == s.opts.DecisionLogSize {
		copy(t.log, t.log[1:])
		t.log = t.log[:len(t.log)-1]
	}
	t.log = append(t.log, rec)
	s.opts.Metrics.Counter("serve.decisions").Inc()
	if !enq.IsZero() {
		s.opts.Metrics.Histogram("serve.decision_latency").ObserveSince(enq)
	}
}

// horizontalHeadroom mirrors fleet's overflow threshold: a replica is
// recommended only when the tier runs hotter than 75% of its pinned
// vertical ceiling.
const horizontalHeadroom = 0.25

// decideMulti moves the tenant's non-CPU dimensions at a decision tick:
// RAM under the dual-threshold policy, disk grow-only, and — for tenants
// with a replica budget — vertical-first horizontal overflow once the
// CPU target pins at MaxCores. Caller holds the tenant lock; rec is the
// in-flight decision record the moves are appended to.
func (s *Server) decideMulti(t *tenantState, rec *DecisionRecord, target int) {
	if t.cfg.MaxRAMGB > 0 {
		ramTo := recommend.MemoryPolicy{}.Target(t.ramGB, t.ramPeak, t.cfg.MinRAMGB, t.cfg.MaxRAMGB)
		if ramTo != t.ramGB {
			rec.RAMFrom, rec.RAMTo = t.ramGB, ramTo
			t.ramGB = ramTo
		}
	}
	if t.cfg.DiskGB > 0 {
		if diskTo := (recommend.DiskPolicy{}).Target(t.diskGB, t.diskHigh, t.cfg.MaxDiskGB); diskTo > t.diskGB {
			rec.DiskTo = diskTo
			t.diskGB = diskTo
		}
	}
	if t.cfg.MaxReplicas > 0 {
		hot := float64(t.cfg.MaxCores) * (1 - horizontalHeadroom)
		switch {
		case target >= t.cfg.MaxCores && t.cpuPeak > hot && t.replicas < t.cfg.MaxReplicas:
			t.replicas++
			rec.Replicas = t.replicas
		case t.replicas > 1 && target < t.cfg.MaxCores:
			t.replicas--
			rec.Replicas = t.replicas
		}
	}
	t.ramPeak, t.diskHigh, t.cpuPeak = 0, 0, 0
}

// newTenant constructs a tenant from its config (the recommender wired
// to the server's audit sink when one is attached).
func (s *Server) newTenant(id string, cfg TenantConfig) (*tenantState, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	rec, err := recommend.NewByName(cfg.Policy, cfg.settings())
	if err != nil {
		return nil, err
	}
	if in, ok := rec.(recommend.Instrumentable); ok && obs.Enabled(s.events.sink) {
		in.SetEventSink(s.events)
	}
	t := &tenantState{id: id, cfg: cfg, rec: rec, cores: cfg.InitialCores}
	t.ramGB = cfg.InitialRAMGB
	t.diskGB = cfg.DiskGB
	if cfg.MaxReplicas > 0 {
		t.replicas = 1
	}
	return t, nil
}

// Handler returns the server's HTTP handler (see routes in handlers.go).
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops the ingest lanes and waits until every queued batch has
// been applied. The HTTP handler must no longer receive ingest traffic
// (callers shut the http.Server down first).
func (s *Server) Drain() {
	for _, sh := range s.shards {
		close(sh.queue)
	}
	for _, sh := range s.shards {
		sh.wg.Wait()
	}
}

// Close drains the shards and, when a snapshot path is configured,
// checkpoints the final state. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.Drain()
		if s.opts.SnapshotPath != "" {
			s.closeErr = s.Snapshot(s.opts.SnapshotPath)
		}
	})
	return s.closeErr
}

// tenantIDs returns every tenant ID, sorted — the stable iteration order
// of the admin list and the snapshot.
func (s *Server) tenantIDs() []string {
	var ids []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id := range sh.tenants {
			ids = append(ids, id)
		}
		sh.mu.Unlock()
	}
	sort.Strings(ids)
	return ids
}

// lockedSink serialises concurrent shard workers onto one event sink
// (the NDJSON sink's buffered writer is single-writer).
type lockedSink struct {
	mu   sync.Mutex
	sink obs.Sink
}

func (l *lockedSink) Enabled() bool { return obs.Enabled(l.sink) }

func (l *lockedSink) Emit(e obs.Event) {
	l.mu.Lock()
	l.sink.Emit(e)
	l.mu.Unlock()
}

func (l *lockedSink) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sink.Flush()
}

// explain materialises the prose for a decision record from its stored
// numeric fields — the serve-side lazy analogue of core.Scratch's
// deferred explanation: nothing is formatted until a stream asks with
// explain=1.
func explain(r DecisionRecord) string {
	switch core.Branch(r.Branch) {
	case core.BranchScaleUp:
		return fmt.Sprintf("scale-up: slope %.2f steep or head-room thin (P-quantile %.2f of %d cores); SF %.2f → +%d cores",
			r.Slope, r.Quantile, r.From, r.RawSF, r.To-r.From)
	case core.BranchScaleDown:
		return fmt.Sprintf("scale-down: slope %.2f flat or idle share large (P-quantile %.2f); SF %.2f → -%d cores",
			r.Slope, r.Quantile, r.RawSF, r.From-r.To)
	case core.BranchWalkDown:
		return fmt.Sprintf("walk-down: flat PvP tail at %d cores; cheapest SKU meeting the performance target is %d cores",
			r.From, r.To)
	case core.BranchHold:
		return fmt.Sprintf("hold: slope %.2f and P-quantile %.2f within thresholds at %d cores",
			r.Slope, r.Quantile, r.From)
	}
	if r.To == r.From {
		return fmt.Sprintf("%s holds %d cores", r.Policy, r.From)
	}
	return fmt.Sprintf("%s moves %d → %d cores", r.Policy, r.From, r.To)
}
